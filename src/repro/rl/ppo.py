"""PPO trainer: a drop-in alternative to the A2C trainer.

The paper builds on SpinningUp, whose flagship algorithms are VPG/A2C
and PPO.  NeuroPlan uses the actor-critic update of Algorithm 1; this
module provides the PPO-clip variant as a documented extension -- same
environment, same policy network, same GAE machinery, but the actor
update maximizes the clipped surrogate over several minibatch epochs,
which tolerates larger steps from the same samples.

Differences from :class:`repro.rl.a2c.A2CTrainer`:

- per-step states and actions are retained so the policy can be
  re-evaluated under new parameters (the ratio
  ``pi_new(a|s) / pi_old(a|s)``);
- the actor/critic heads and the shared GNN update together per PPO
  epoch (one optimizer), with early stopping on a KL estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.a2c import TrainingResult
from repro.rl.batched import BatchedForward
from repro.rl.checkpointing import CheckpointingTrainer
from repro.rl.env import PlanningEnv
from repro.rl.gae import discounted_returns, gae_advantages
from repro.rl.policy import ActorCriticPolicy
from repro.rl.rollouts import make_collector, resolve_backend
from repro.seeding import as_generator


@dataclass
class PPOConfig:
    """PPO hyperparameters (SpinningUp-style defaults)."""

    epochs: int = 32
    steps_per_epoch: int = 1024
    max_trajectory_length: int = 512
    lr: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.97
    clip_ratio: float = 0.2
    update_iterations: int = 4
    target_kl: float = 0.02
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    max_grad_norm: float = 10.0
    seed: int = 0
    num_workers: int = 1
    num_envs: int = 1  # lockstep environments per rollout group
    rollout_backend: str = "auto"  # auto | serial | parallel | batched
    checkpoint_every: int = 0  # write a resume checkpoint every N epochs
    checkpoint_dir: "str | None" = None
    resume_from: "str | None" = None  # checkpoint file or directory

    def __post_init__(self):
        if self.epochs < 1 or self.steps_per_epoch < 1:
            raise ConfigError("epochs and steps_per_epoch must be >= 1")
        if not 0.0 < self.clip_ratio < 1.0:
            raise ConfigError("clip_ratio must be in (0, 1)")
        if self.update_iterations < 1:
            raise ConfigError("update_iterations must be >= 1")
        resolve_backend(self.rollout_backend, self.num_workers, self.num_envs)
        if self.num_workers > self.steps_per_epoch:
            raise ConfigError(
                f"num_workers={self.num_workers} exceeds the available "
                f"trajectories per epoch (steps_per_epoch="
                f"{self.steps_per_epoch})"
            )
        if self.num_envs > self.steps_per_epoch:
            raise ConfigError(
                f"num_envs={self.num_envs} exceeds the available "
                f"trajectories per epoch (steps_per_epoch="
                f"{self.steps_per_epoch})"
            )
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ConfigError("checkpoint_every needs a checkpoint_dir")


class PPOTrainer(CheckpointingTrainer):
    """Proximal policy optimization over a :class:`PlanningEnv`."""

    ALGO = "ppo"

    def __init__(
        self,
        env: PlanningEnv,
        policy: ActorCriticPolicy,
        config: "PPOConfig | None" = None,
    ):
        self.env = env
        self.policy = policy
        self.config = config or PPOConfig()
        # Deduplicate shared GNN parameters by identity (one optimizer
        # covers actor, critic and the shared encoder).
        seen: dict[int, object] = {}
        for group in policy.parameter_groups().values():
            for param in group:
                seen.setdefault(id(param), param)
        self.optimizer = Adam(list(seen.values()), lr=self.config.lr)
        self.rng = as_generator(self.config.seed)
        self._collector = None
        # One autodiff graph per PPO iteration instead of one per
        # transition when num_envs > 1 (also validates gnn_type up front).
        self._batched_forward = (
            BatchedForward(policy, env.adjacency_norm)
            if self.config.num_envs > 1
            else None
        )

    def _optimizers(self) -> dict:
        return {"optimizer": self.optimizer}

    # ------------------------------------------------------------------
    def train(self) -> TrainingResult:
        config = self.config
        env = self.env
        start = time.perf_counter()

        env.reset()
        if env.done:
            return TrainingResult(
                best_capacities=env.capacities(),
                best_cost=env.plan_cost(),
                epochs_run=0,
                converged=True,
                already_feasible=True,
                train_seconds=time.perf_counter() - start,
            )

        self._collector = make_collector(
            env,
            self.policy,
            self.rng,
            rollout_backend=config.rollout_backend,
            num_workers=config.num_workers,
            num_envs=config.num_envs,
            seed=config.seed,
        )
        try:
            history, best_cost, best_capacities = self._train_epochs()
        finally:
            self._collector.close()
            self._collector = None

        return TrainingResult(
            best_capacities=best_capacities,
            best_cost=best_cost,
            epochs_run=len(history),
            converged=best_capacities is not None,
            history=history,
            train_seconds=time.perf_counter() - start,
        )

    def _train_epochs(self) -> tuple:
        config = self.config
        best_capacities = None
        best_cost = float("inf")
        history: list[dict] = []
        start_epoch = 0

        resume = self._load_resume()
        if resume is not None:
            best_cost = resume.best_cost
            best_capacities = resume.best_capacities
            history = [dict(entry) for entry in resume.history]
            start_epoch = resume.epoch

        for epoch in range(start_epoch, config.epochs):
            steps, trajectory_bounds, completion = self._collect(epoch)
            if not steps:
                break
            advantages, returns = self._estimate(steps, trajectory_bounds)
            metrics = self._update(steps, advantages, returns)

            epoch_reward = float(
                np.sum([s.reward for s in steps]) / max(1, len(trajectory_bounds))
            )
            if completion["best_cost"] < best_cost:
                best_cost = completion["best_cost"]
                best_capacities = completion["best_capacities"]
            entry = {
                "epoch": epoch,
                "epoch_reward": epoch_reward,
                "completion_rate": completion["rate"],
                "num_trajectories": len(trajectory_bounds),
                "best_cost": best_cost if best_capacities else None,
                **metrics,
            }
            history.append(entry)
            if telemetry.enabled():
                telemetry.counter("rl.ppo.epochs")
                telemetry.counter("rl.env_steps", len(steps))
                telemetry.counter("rl.episodes", len(trajectory_bounds))
                telemetry.event("rl.ppo.epoch", **entry)
            self._write_checkpoint(epoch, best_cost, best_capacities, history)

        return history, best_cost, best_capacities

    # ------------------------------------------------------------------
    def _collect(self, epoch: int):
        """Roll out one epoch of transitions via the configured collector."""
        config = self.config
        batch = self._collector.collect(
            budget=config.steps_per_epoch,
            max_trajectory_length=config.max_trajectory_length,
            epoch=epoch,
        )
        return batch.transitions(), batch.bounds(), batch.completion()

    def _estimate(self, steps, bounds):
        """Per-step GAE advantages and returns across trajectories."""
        config = self.config
        advantages = np.zeros(len(steps))
        returns = np.zeros(len(steps))
        for start, end, _done, bootstrap in bounds:
            rewards = np.array([s.reward for s in steps[start:end]])
            values = np.array([s.value for s in steps[start:end]])
            advantages[start:end] = gae_advantages(
                rewards, values, config.gamma, config.gae_lambda,
                bootstrap_value=bootstrap,
            )
            returns[start:end] = discounted_returns(
                rewards, config.gamma, bootstrap_value=bootstrap
            )
        if len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8
            )
        return advantages, returns

    def _evaluate_steps(self, steps) -> tuple:
        """(log_probs, entropies, values) Tensors under current params.

        ``num_envs == 1`` keeps the legacy per-transition graphs (byte-
        identical results); ``num_envs > 1`` builds one block-diagonal
        graph over every transition at once.
        """
        if self._batched_forward is not None:
            observations = np.stack([s.observation for s in steps])
            masks = np.stack([s.mask for s in steps])
            actions = np.array([s.action for s in steps], dtype=np.int64)
            return self._batched_forward.evaluate(observations, masks, actions)
        log_probs, entropies, values = [], [], []
        for step in steps:
            distribution, value = self.policy(
                step.observation, self.env.adjacency_norm, step.mask
            )
            log_probs.append(distribution.log_prob(step.action))
            entropies.append(distribution.entropy())
            values.append(value)
        return (
            Tensor.stack(log_probs),
            Tensor.stack(entropies),
            Tensor.stack(values),
        )

    def _update(self, steps, advantages, returns) -> dict:
        """Clipped-surrogate updates with KL early stopping."""
        config = self.config
        last_policy_loss = 0.0
        last_value_loss = 0.0
        kl = 0.0
        for iteration in range(config.update_iterations):
            log_probs_t, entropies_t, values_t = self._evaluate_steps(steps)
            old_log_probs = np.array([s.log_prob for s in steps])

            kl = float(np.mean(old_log_probs - log_probs_t.data))
            if iteration > 0 and kl > config.target_kl:
                break

            ratio = (log_probs_t - Tensor(old_log_probs)).exp()
            adv = Tensor(advantages)
            unclipped = ratio * adv
            clip_low = 1.0 - config.clip_ratio
            clip_high = 1.0 + config.clip_ratio
            clipped_ratio = Tensor.where(
                ratio.data < clip_low,
                Tensor(np.full(ratio.shape, clip_low)),
                Tensor.where(
                    ratio.data > clip_high,
                    Tensor(np.full(ratio.shape, clip_high)),
                    ratio,
                ),
            )
            clipped = clipped_ratio * adv
            surrogate = Tensor.where(
                unclipped.data < clipped.data, unclipped, clipped
            )
            policy_loss = -surrogate.mean()
            value_loss = F.mse_loss(values_t, returns)
            entropy_bonus = entropies_t.mean()
            loss = (
                policy_loss
                + config.value_coef * value_loss
                - config.entropy_coef * entropy_bonus
            )
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.clip_grad_norm(config.max_grad_norm)
            self.optimizer.step()
            last_policy_loss = policy_loss.item()
            last_value_loss = value_loss.item()
        return {
            "policy_loss": last_policy_loss,
            "value_loss": last_value_loss,
            "approx_kl": kl,
        }
