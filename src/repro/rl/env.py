"""The planning environment (Fig. 4 of the paper).

A trajectory starts from the instance's original capacities and
repeatedly *adds* capacity (add-only actions: half the action space,
stable termination, and stateful failure checking stay sound -- the
three benefits Section 4.2 lists).  The action space is
``num_links * max_units_per_step``: pick a transformed node (an IP
link) and how many capacity units to add.  An action mask disables
(link, units) pairs that would violate a fiber's spectrum budget
(Eq. 4), so the stochastic policy only samples valid actions.

Rewards are dense: each step earns the negative incremental cost of the
added capacity, scaled so a whole trajectory lands in roughly [-1, 0];
hitting the step limit without a feasible plan costs an extra -1
(Section 4.2, "Reward representation").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import ConfigError, EnvironmentError_
from repro.evaluator import PlanEvaluator
from repro.nn.gnn import normalized_adjacency, normalized_adjacency_sparse
from repro.planning.greedy import GreedyPlanner
from repro.rl.state import StateEncoder
from repro.topology.instance import PlanningInstance
from repro.topology.spectrum import SpectrumIndex
from repro.topology.transform import node_link_transform

TERMINAL_PENALTY = -1.0

# Slack (in Gbps) kept on the provable-shortfall bound before the
# environment trusts it instead of re-solving the feasibility LP.  Must
# dominate the LP tolerance (1e-6) plus solver numerical noise so a
# skipped check can never disagree with the check it replaces.
INFEASIBILITY_SKIP_SLACK = 1e-5

# Topologies at or above this many transformed nodes default to sparse
# GNN propagation; smaller ones stay dense (bitwise-identical legacy
# path, and dense matmul wins at tiny sizes anyway).
SPARSE_ADJACENCY_THRESHOLD = 64


@dataclass
class StepResult:
    """What :meth:`PlanningEnv.step` returns."""

    observation: np.ndarray
    reward: float
    done: bool
    feasible: bool
    info: dict


class EvaluationMemo:
    """Shared evaluation verdicts across env clones of one instance.

    The evaluator's verdict (feasible / violated failure / shortfall)
    is a pure function of the capacity assignment for a fixed instance
    and demand matrix, so concurrent rollouts replaying the same
    deterministic trajectory recompute identical feasibility LPs.  A
    memo keyed by the capacity vector lets the first rollout pay for
    each state and every concurrent sibling reuse the exact result
    object -- bitwise-identical verdicts, one LP solve instead of N.

    Only attach one memo to environments that share the instance *and*
    the demand target; :meth:`PlanningEnv.retarget_demands` clears an
    attached memo defensively.  The memo is deliberately bounded and
    meant to be cleared between request cohorts (it shares work across
    in-flight requests; long-term reuse is the response cache's job).
    """

    def __init__(self, max_entries: int = 8192):
        self.max_entries = max_entries
        self._entries: dict = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key):
        result = self._entries.get(key)
        with self._lock:
            if result is not None:
                self._hits += 1
            else:
                self._misses += 1
        if result is not None and telemetry.enabled():
            telemetry.counter("env.eval_memo.hits")
        return result

    def put(self, key, result) -> None:
        with self._lock:
            if len(self._entries) < self.max_entries:
                self._entries[key] = result

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
            }


class PlanningEnv:
    """Add-capacity planning environment over one instance."""

    def __init__(
        self,
        instance: PlanningInstance,
        max_units_per_step: int = 4,
        max_steps: int = 1024,
        evaluator_mode: str = "neuroplan",
        feature_set: str = "capacity",
        reward_scale: float | None = None,
        sparse_adjacency: bool | None = None,
    ):
        if max_units_per_step < 1:
            raise ConfigError("max_units_per_step must be >= 1")
        if max_steps < 1:
            raise ConfigError("max_steps must be >= 1")
        self.instance = instance
        self.max_units = max_units_per_step
        self.max_steps = max_steps
        self.link_graph = node_link_transform(instance.network)
        if sparse_adjacency is None:
            sparse_adjacency = (
                self.link_graph.num_nodes >= SPARSE_ADJACENCY_THRESHOLD
            )
        self.sparse_adjacency = bool(sparse_adjacency)
        self.adjacency_norm = (
            normalized_adjacency_sparse(self.link_graph.adjacency)
            if self.sparse_adjacency
            else normalized_adjacency(self.link_graph.adjacency)
        )
        self._spectrum = SpectrumIndex(instance.network)
        self.encoder = StateEncoder(instance, self.link_graph, feature_set)
        self.evaluator = PlanEvaluator(instance, mode=evaluator_mode)
        self.unit = instance.capacity_unit
        self.reward_scale = (
            reward_scale
            if reward_scale is not None
            else self._default_reward_scale()
        )
        self._capacities: dict[str, float] = {}
        self._steps = 0
        self._done = True
        self._feasible = False
        # Provable lower bound on the violated scenario's shortfall.
        # Adding x Gbps to one link raises the feasibility LP's served
        # demand by at most 2x (each direction row relaxes by x), so the
        # bound decays by 2x per step and the LP solve is skipped while
        # it stays clearly positive -- same verdicts, far fewer solves.
        self._infeasibility_gap = 0.0
        self._last_violated: "str | None" = None
        # Optional cross-rollout verdict sharing (see EvaluationMemo).
        self.eval_memo: "EvaluationMemo | None" = None

    # ------------------------------------------------------------------
    def _default_reward_scale(self) -> float:
        """Scale rewards by the greedy plan's incremental cost.

        A reasonable trajectory then accumulates roughly -1..0 total
        reward, the range the paper targets.
        """
        initial = self.instance.network.capacities()
        greedy = GreedyPlanner().plan(self.instance)
        added_cost = self.instance.cost_model.incremental_cost(
            self.instance.network, initial, greedy.capacities
        )
        return max(added_cost, 1.0)

    # ------------------------------------------------------------------
    def replica_kwargs(self) -> dict:
        """Constructor kwargs that rebuild an identical environment.

        Used by the parallel rollout collector to stamp out worker
        replicas.  The *resolved* reward scale is included so replicas
        skip the greedy-plan probe and are guaranteed to score rewards
        identically to this environment.
        """
        return {
            "max_units_per_step": self.max_units,
            "max_steps": self.max_steps,
            "evaluator_mode": self.evaluator.mode,
            "feature_set": self.encoder.feature_set,
            "reward_scale": self.reward_scale,
            "sparse_adjacency": self.sparse_adjacency,
        }

    # ------------------------------------------------------------------
    # Spaces
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return self.link_graph.num_nodes

    @property
    def num_actions(self) -> int:
        return self.num_links * self.max_units

    def decode_action(self, action: int) -> tuple[str, int]:
        """Map a flat action index to (link id, units to add)."""
        if not 0 <= action < self.num_actions:
            raise EnvironmentError_(f"action {action} out of range")
        link_index, units_index = divmod(action, self.max_units)
        return self.link_graph.link_ids[link_index], units_index + 1

    def action_mask(self) -> np.ndarray:
        """Valid-action mask from the spectrum constraints (Eq. 4).

        Vectorized over the precomputed :class:`SpectrumIndex`: one
        sparse matvec yields every link's headroom at once, and the
        per-(link, units) mask falls out of a single comparison.
        """
        headroom = self._spectrum.link_headroom(self._capacities)
        units = np.floor(np.round(headroom / self.unit, 9))
        allowed = np.minimum(units, self.max_units)
        mask = np.arange(self.max_units)[None, :] < allowed[:, None]
        return mask.reshape(-1)

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a trajectory from the original capacities."""
        return self._reset_at(self.instance.network.capacities())

    def reset_from(self, capacities: dict[str, float]) -> np.ndarray:
        """Start a trajectory from a prior plan's capacities (warm start).

        Used by incremental replanning: instead of rebuilding from the
        original network, the rollout resumes from where a prior plan
        left off.  Capacities below the original are clamped up (a plan
        never removes capacity), missing links inherit their original
        value, and unknown link ids are rejected.
        """
        base = self.instance.network.capacities()
        unknown = set(capacities) - set(base)
        if unknown:
            raise EnvironmentError_(
                f"reset_from got unknown link ids: {sorted(unknown)[:5]}"
            )
        merged = {
            link_id: max(float(capacities.get(link_id, original)), original)
            for link_id, original in base.items()
        }
        if not self._spectrum.feasible(merged):
            raise EnvironmentError_(
                "reset_from capacities violate the spectrum constraints"
            )
        return self._reset_at(merged)

    def _evaluate_memoized(self):
        """Evaluate the current capacities, sharing verdicts through an
        attached :class:`EvaluationMemo` when one is present."""
        memo = self.eval_memo
        if memo is None:
            return self.evaluator.evaluate(self._capacities)
        key = tuple(self._capacities.values())
        result = memo.get(key)
        if result is None:
            result = self.evaluator.evaluate(self._capacities)
            memo.put(key, result)
        return result

    def _reset_at(self, capacities: dict[str, float]) -> np.ndarray:
        self._capacities = capacities
        self._steps = 0
        self.evaluator.reset()
        result = self._evaluate_memoized()
        self._feasible = result.feasible
        self._done = result.feasible  # nothing to plan
        self._infeasibility_gap = 0.0 if result.feasible else result.shortfall
        self._last_violated = result.violated_failure
        return self.observation()

    def retarget_demands(self, traffic) -> int:
        """Repoint the environment at a drifted demand matrix.

        Observations (capacity features) and action masks (spectrum
        headroom) are demand-independent, so only the evaluator layer
        needs to move: the compiled feasibility LP swaps its serve
        bounds in place (warm basis intact) and this env's ``instance``
        follows.  The current episode is invalidated — call ``reset()``
        or ``reset_from()`` before stepping.  Returns the number of
        flows whose demand changed.
        """
        changed = self.evaluator.retarget_demands(traffic)
        self.instance = self.evaluator.instance
        self._done = True
        if self.eval_memo is not None:
            # Verdicts memoized under the old demands are wrong now.
            self.eval_memo.clear()
        return changed

    def observation(self) -> np.ndarray:
        return self.encoder.encode(self._capacities)

    @property
    def done(self) -> bool:
        return self._done

    @property
    def feasible(self) -> bool:
        return self._feasible

    @property
    def steps(self) -> int:
        return self._steps

    def capacities(self) -> dict[str, float]:
        return dict(self._capacities)

    def step(self, action: int) -> StepResult:
        """Apply an action; return the dense reward and termination."""
        if self._done:
            raise EnvironmentError_("step() called on a finished trajectory")
        link_id, units = self.decode_action(action)
        amount = units * self.unit
        before = dict(self._capacities)
        self._capacities[link_id] = self._capacities[link_id] + amount
        if not self._spectrum.feasible(self._capacities):
            raise EnvironmentError_(
                f"action on {link_id} violates spectrum; the action mask "
                "must be applied before sampling"
            )
        added_cost = self.instance.cost_model.incremental_cost(
            self.instance.network, before, self._capacities
        )
        reward = -added_cost / self.reward_scale
        self._steps += 1

        self._infeasibility_gap -= 2.0 * amount
        if self._infeasibility_gap > INFEASIBILITY_SKIP_SLACK:
            # The violated scenario's shortfall is provably still
            # positive: the evaluator would return the same verdict,
            # so don't pay for the LP solve.
            feasible = False
            violated = self._last_violated
            shortfall = self._infeasibility_gap
        else:
            result = self._evaluate_memoized()
            feasible = result.feasible
            violated = result.violated_failure
            shortfall = result.shortfall
            self._infeasibility_gap = 0.0 if feasible else result.shortfall
            self._last_violated = result.violated_failure
        self._feasible = feasible
        if feasible:
            self._done = True
        elif self._steps >= self.max_steps:
            self._done = True
            reward += TERMINAL_PENALTY
        return StepResult(
            observation=self.observation(),
            reward=reward,
            done=self._done,
            feasible=self._feasible,
            info={
                "violated_failure": violated,
                "shortfall": shortfall,
                "added_cost": added_cost,
                "link": link_id,
                "units": units,
            },
        )

    # ------------------------------------------------------------------
    def plan_cost(self) -> float:
        """Eq. 1 cost of the current capacity assignment."""
        return self.instance.cost_model.plan_cost(
            self.instance.network, self._capacities
        )
