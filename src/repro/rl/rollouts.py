"""Rollout collection: serial and multiprocessing trajectory gathering.

Training wall-clock is dominated by trajectory collection — every
``PlanningEnv.step`` runs the stateful failure checker over all
scenarios — so this module factors collection out of the trainers and
adds a ``multiprocessing`` worker-pool backend that rolls out seeded
environment replicas in parallel (the actor-parallelism standard in
DRL-for-networking systems, and the premise of the paper's Fig. 9
scalability story).

Determinism contract
--------------------
Two backends with two distinct, documented guarantees:

:class:`SerialRolloutCollector`
    Reproduces the legacy in-process loop exactly: one environment, one
    continuous RNG stream (the trainer's), trajectories collected back
    to back until the step budget is consumed.  Trainers configured
    with ``num_workers=1`` (the default) use this backend, so their
    results are byte-identical to the pre-subsystem trainers.

:class:`ParallelRolloutCollector`
    Treats each trajectory as an independent unit of work: trajectory
    ``k`` of epoch ``e`` draws its actions from a dedicated RNG stream
    derived from ``(seed, e, k)`` (see :func:`repro.seeding.stream_generator`),
    and ``PlanningEnv.reset`` is deterministic, so a trajectory's
    content is a pure function of ``(policy parameters, seed, e, k)``.
    Workers are handed trajectory indices in rounds and fragments are
    merged in index order, so the merged batch is **bitwise identical
    for any worker count** (1 worker == 4 workers) and invariant to OS
    scheduling.  The last fragment is cut at the step budget and
    bootstrapped with the critic value the worker already computed for
    the next state; speculative work past the budget is discarded (and
    counted in telemetry).

The two contracts cannot coincide: the serial stream threads one RNG
through data-dependent trajectory lengths, which has no
order-independent parallel equivalent.  ``rollout_backend="auto"``
therefore picks serial for ``num_workers=1`` (legacy-compatible) and
the worker pool otherwise.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ConfigError, EnvironmentError_
from repro.nn.tensor import no_grad
from repro.resilience import faults
from repro.rl.env import PlanningEnv
from repro.rl.policy import ActorCriticPolicy
from repro.seeding import stream_generator

BACKENDS = ("auto", "serial", "parallel", "batched")


def resolve_backend(
    rollout_backend: str, num_workers: int, num_envs: int = 1
) -> str:
    """Map ``(backend, num_workers, num_envs)`` to a concrete backend.

    ``num_envs > 1`` selects the batched multi-environment collector
    (:mod:`repro.rl.batched`); it composes with ``num_workers`` (each
    worker rolls out whole groups of ``num_envs`` streams) but not with
    an explicit serial/parallel backend request, whose per-trajectory
    contracts a batch cannot honor.
    """
    if rollout_backend not in BACKENDS:
        raise ConfigError(
            f"rollout_backend must be one of {BACKENDS}, got {rollout_backend!r}"
        )
    if num_workers < 1:
        raise ConfigError("num_workers must be >= 1")
    if num_envs < 1:
        raise ConfigError("num_envs must be >= 1")
    if rollout_backend == "serial" and num_workers > 1:
        raise ConfigError(
            f"rollout_backend='serial' cannot use num_workers={num_workers}"
        )
    if num_envs > 1 and rollout_backend in ("serial", "parallel"):
        raise ConfigError(
            f"rollout_backend={rollout_backend!r} cannot use "
            f"num_envs={num_envs}; use 'auto' or 'batched'"
        )
    if rollout_backend == "batched":
        return "batched"
    if rollout_backend == "auto":
        if num_envs > 1:
            return "batched"
        return "serial" if num_workers == 1 else "parallel"
    return rollout_backend


# ----------------------------------------------------------------------
# Data model
# ----------------------------------------------------------------------
@dataclass
class Transition:
    """One environment step retained for the policy update."""

    observation: np.ndarray
    mask: np.ndarray
    action: int
    reward: float
    value: float
    log_prob: float


@dataclass
class Fragment:
    """One trajectory (possibly cut at the epoch's step budget).

    ``done`` means the trajectory genuinely ended (feasible plan, the
    environment's step limit, or the trainer's ``max_trajectory_length``)
    rather than being cut at the budget boundary; only cut fragments
    carry a non-zero ``final_value`` bootstrap.
    """

    transitions: list[Transition]
    stream: int  # trajectory index within the epoch (merge key)
    done: bool
    feasible: bool
    plan_cost: "float | None"
    capacities: "dict[str, float] | None"
    final_value: float  # critic estimate of the state after the last step

    def __len__(self) -> int:
        return len(self.transitions)

    @property
    def completed(self) -> bool:
        """Reached a feasible plan (the Fig. 11/12 completion metric)."""
        return self.done and self.feasible


@dataclass
class RolloutBatch:
    """Merged fragments of one collection round, in stream order."""

    fragments: list[Fragment] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return sum(len(f) for f in self.fragments)

    def transitions(self) -> list[Transition]:
        """All transitions, concatenated in fragment order."""
        flat: list[Transition] = []
        for fragment in self.fragments:
            flat.extend(fragment.transitions)
        return flat

    def bounds(self) -> list[tuple[int, int, bool, float]]:
        """Per-fragment ``(start, end, done, bootstrap)`` over the flat list."""
        out: list[tuple[int, int, bool, float]] = []
        start = 0
        for fragment in self.fragments:
            end = start + len(fragment)
            out.append((start, end, fragment.done, fragment.final_value))
            start = end
        return out

    def completion(self) -> dict:
        """Epoch completion summary (rate, best feasible cost and plan)."""
        best_cost = float("inf")
        best_capacities = None
        completions = 0
        for fragment in self.fragments:
            if fragment.completed:
                completions += 1
                if fragment.plan_cost is not None and fragment.plan_cost < best_cost:
                    best_cost = fragment.plan_cost
                    best_capacities = fragment.capacities
        return {
            "rate": completions / max(1, len(self.fragments)),
            "best_cost": best_cost,
            "best_capacities": best_capacities,
        }


@dataclass
class ReplicaSpec:
    """Everything a worker needs to rebuild the env + policy pair."""

    instance: object  # PlanningInstance (picklable plain data)
    env_kwargs: dict
    policy_kwargs: dict

    @classmethod
    def from_env_policy(
        cls, env: PlanningEnv, policy: ActorCriticPolicy
    ) -> "ReplicaSpec":
        return cls(
            instance=env.instance,
            env_kwargs=env.replica_kwargs(),
            policy_kwargs=policy.spec(),
        )

    def build(self) -> tuple[PlanningEnv, ActorCriticPolicy]:
        env = PlanningEnv(self.instance, **self.env_kwargs)
        # Parameters are overwritten by each round's state dict, so the
        # init RNG is irrelevant; 0 keeps replica construction cheap and
        # deterministic.
        policy = ActorCriticPolicy(rng=0, **self.policy_kwargs)
        return env, policy


def merge_fragments(fragments: list[Fragment], budget: int) -> RolloutBatch:
    """Keep fragments in stream order up to ``budget`` steps.

    The overflowing fragment is cut at the boundary and bootstrapped
    with the collector's critic estimate of the first dropped state;
    later fragments (speculative round overshoot) are discarded.  Shared
    by every budget-bounded collector, so the merged batch depends only
    on the ordered fragment stream — never on which backend, worker
    count or batch width produced it.
    """
    kept: list[Fragment] = []
    total = 0
    for fragment in fragments:
        if total >= budget:
            break
        if len(fragment) == 0:
            continue
        room = budget - total
        if len(fragment) <= room:
            kept.append(fragment)
            total += len(fragment)
        else:
            cut = fragment.transitions[:room]
            bootstrap = fragment.transitions[room].value
            kept.append(
                Fragment(
                    transitions=cut,
                    stream=fragment.stream,
                    done=False,
                    feasible=False,
                    plan_cost=None,
                    capacities=None,
                    final_value=bootstrap,
                )
            )
            total = budget
    return RolloutBatch(kept)


# ----------------------------------------------------------------------
# Serial backend (legacy loop, byte-identical)
# ----------------------------------------------------------------------
class SerialRolloutCollector:
    """The legacy in-process collection loop behind the collector API.

    Consumes the trainer's RNG in exactly the order the pre-subsystem
    trainers did (mask, forward, sample, step), so any trainer driving
    this backend produces byte-identical results to the old inline code.
    """

    def __init__(
        self,
        env: PlanningEnv,
        policy: ActorCriticPolicy,
        rng: np.random.Generator,
    ):
        self.env = env
        self.policy = policy
        self.rng = rng

    def collect(
        self, budget: int, max_trajectory_length: int, epoch: int = 0
    ) -> RolloutBatch:
        """Roll out up to ``budget`` steps with the current policy."""
        del epoch  # the serial stream is continuous across epochs
        env = self.env
        fragments: list[Fragment] = []
        current: list[Transition] = []
        observation = env.reset()

        for _ in range(budget):
            mask = env.action_mask()
            if not mask.any():
                break
            with no_grad():
                distribution, value = self.policy(observation, env.adjacency_norm, mask)
                action = distribution.sample(self.rng)
                log_prob = distribution.log_prob(action).item()
                value_estimate = value.item()
            result = env.step(action)
            current.append(
                Transition(
                    observation=observation,
                    mask=mask,
                    action=action,
                    reward=result.reward,
                    value=value_estimate,
                    log_prob=log_prob,
                )
            )
            observation = result.observation

            if result.done or len(current) >= max_trajectory_length:
                feasible = result.feasible
                fragments.append(
                    Fragment(
                        transitions=current,
                        stream=len(fragments),
                        done=True,
                        feasible=feasible,
                        plan_cost=env.plan_cost() if feasible else None,
                        capacities=env.capacities() if feasible else None,
                        final_value=0.0,
                    )
                )
                observation = env.reset()
                current = []

        if current:
            with no_grad():
                bootstrap = self.policy.value(observation, env.adjacency_norm).item()
            fragments.append(
                Fragment(
                    transitions=current,
                    stream=len(fragments),
                    done=False,
                    feasible=False,
                    plan_cost=None,
                    capacities=None,
                    final_value=bootstrap,
                )
            )
        batch = RolloutBatch(fragments)
        if telemetry.enabled():
            telemetry.counter("rl.rollouts.fragments", len(fragments))
            telemetry.counter("rl.rollouts.steps", batch.num_steps)
        return batch

    def close(self) -> None:  # symmetry with the pool-backed collector
        pass

    def __enter__(self) -> "SerialRolloutCollector":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Worker-pool backend
# ----------------------------------------------------------------------
# Per-process replica cache: built lazily on the first task so that
# construction errors surface through ``Pool.map`` (an initializer that
# raises would make the pool respawn workers forever).
_WORKER: dict = {}


def _init_worker(spec: ReplicaSpec) -> None:
    _WORKER["spec"] = spec
    _WORKER.pop("env", None)
    _WORKER.pop("policy", None)


def _run_fragment(task: tuple) -> Fragment:
    """Collect one full trajectory in a worker process."""
    state_blob, seed, epoch, stream, max_trajectory_length, attempt = task
    # Deterministic crash injection, keyed by the trajectory's identity
    # (epoch.stream) and the collector-side attempt counter -- the retry
    # of the same task does not re-fire, and because the fragment is a
    # pure function of (params, seed, epoch, stream), the respawned
    # attempt reproduces the crashed one bit for bit.
    faults.maybe_fail("rollout.worker", key=f"{epoch}.{stream}", attempt=attempt)
    if "env" not in _WORKER:
        env, policy = _WORKER["spec"].build()
        _WORKER["env"] = env
        _WORKER["policy"] = policy
    env: PlanningEnv = _WORKER["env"]
    policy: ActorCriticPolicy = _WORKER["policy"]
    policy.load_state_dict(pickle.loads(state_blob))
    rng = stream_generator(seed, epoch, stream)

    transitions: list[Transition] = []
    observation = env.reset()
    done = False
    feasible = False
    final_value = 0.0
    with no_grad():
        while not done and len(transitions) < max_trajectory_length:
            mask = env.action_mask()
            if not mask.any():
                # Spectrum exhausted: end the fragment un-done so the
                # collector can bootstrap (or stop, if it is empty).
                final_value = policy.value(observation, env.adjacency_norm).item()
                break
            distribution, value = policy(observation, env.adjacency_norm, mask)
            action = distribution.sample(rng)
            log_prob = distribution.log_prob(action).item()
            value_estimate = value.item()
            result = env.step(action)
            transitions.append(
                Transition(
                    observation=observation,
                    mask=mask,
                    action=action,
                    reward=result.reward,
                    value=value_estimate,
                    log_prob=log_prob,
                )
            )
            observation = result.observation
            done = result.done
            feasible = result.feasible
        if not done and transitions and len(transitions) >= max_trajectory_length:
            done = True  # trainer-imposed trajectory cap, like the serial loop
        elif not done and transitions and final_value == 0.0:
            final_value = policy.value(observation, env.adjacency_norm).item()
    return Fragment(
        transitions=transitions,
        stream=stream,
        done=done,
        feasible=done and feasible,
        plan_cost=env.plan_cost() if done and feasible else None,
        capacities=env.capacities() if done and feasible else None,
        final_value=0.0 if done else final_value,
    )


class ParallelRolloutCollector:
    """Collect trajectory fragments from N worker-process env replicas.

    Use as a context manager (or call :meth:`close`); the pool is
    terminated and joined even on KeyboardInterrupt or worker crashes.

    A task that dies (exception in the worker, or a worker killed
    outright when ``worker_timeout`` is set) is retried up to
    ``max_worker_retries`` times with linear backoff before the
    collector gives up with a typed
    :class:`~repro.errors.EnvironmentError_`.  Retries cannot perturb
    the batch: every fragment is a pure function of ``(policy
    parameters, seed, epoch, stream)``, so the respawned attempt
    reproduces exactly what the crashed one would have produced.
    """

    def __init__(
        self,
        env: PlanningEnv,
        policy: ActorCriticPolicy,
        *,
        num_workers: int,
        seed: int,
        start_method: "str | None" = None,
        max_worker_retries: int = 2,
        retry_backoff: float = 0.05,
        worker_timeout: "float | None" = None,
    ):
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if max_worker_retries < 0:
            raise ConfigError("max_worker_retries must be >= 0")
        self.policy = policy
        self.num_workers = num_workers
        self.seed = int(seed)
        self.max_worker_retries = max_worker_retries
        self.retry_backoff = retry_backoff
        self.worker_timeout = worker_timeout
        self._spec = ReplicaSpec.from_env_policy(env, policy)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(
                processes=self.num_workers,
                initializer=_init_worker,
                initargs=(self._spec,),
            )
            telemetry.counter("rl.rollouts.workers_spawned", self.num_workers)
        return self._pool

    def collect(
        self, budget: int, max_trajectory_length: int, epoch: int = 0
    ) -> RolloutBatch:
        """Collect exactly ``budget`` steps (fewer only if the env exhausts).

        Fragments are merged in trajectory-index order, so the result is
        independent of worker count and scheduling.
        """
        if budget < 1:
            raise ConfigError("budget must be >= 1")
        if self.num_workers > budget:
            raise ConfigError(
                f"num_workers={self.num_workers} exceeds the available "
                f"trajectories: a {budget}-step budget can hold at most "
                f"{budget} one-step trajectories"
            )
        start = time.perf_counter()
        pool = self._ensure_pool()
        with telemetry.timer("rl.rollouts.transfer"):
            state_blob = pickle.dumps(
                self.policy.state_dict(), protocol=pickle.HIGHEST_PROTOCOL
            )
            telemetry.counter("rl.rollouts.transfer_bytes", len(state_blob))

        fragments: list[Fragment] = []
        total = 0
        next_stream = 0
        try:
            while total < budget:
                # Each remaining step can hold at most one more trajectory.
                width = min(self.num_workers, budget - total)
                tasks = [
                    (state_blob, self.seed, epoch, stream, max_trajectory_length, 0)
                    for stream in range(next_stream, next_stream + width)
                ]
                round_fragments = self._run_round(pool, tasks)
                next_stream += width
                exhausted = False
                for fragment in round_fragments:
                    fragments.append(fragment)
                    total += len(fragment)
                    if len(fragment) == 0:
                        exhausted = True  # env has no valid action at reset
                if exhausted:
                    break
        except KeyboardInterrupt:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise EnvironmentError_(
                f"rollout worker crashed during collection: {exc!r}"
            ) from exc

        batch = self._merge(fragments, budget)
        if telemetry.enabled():
            elapsed = time.perf_counter() - start
            telemetry.counter("rl.rollouts.fragments", len(batch.fragments))
            telemetry.counter("rl.rollouts.steps", batch.num_steps)
            telemetry.counter("rl.rollouts.steps_discarded", total - batch.num_steps)
            telemetry.observe("rl.rollouts.collect", elapsed)
            if elapsed > 0:
                telemetry.gauge("rl.rollouts.steps_per_sec", batch.num_steps / elapsed)
        return batch

    def _run_round(self, pool, tasks: list[tuple]) -> list[Fragment]:
        """Run one round of tasks, respawning failed ones with retries."""
        pending = [pool.apply_async(_run_fragment, (task,)) for task in tasks]
        fragments: list[Fragment] = []
        for task, handle in zip(tasks, pending):
            try:
                fragments.append(handle.get(self.worker_timeout))
            except Exception as exc:
                fragments.append(self._retry_task(pool, task, exc))
        return fragments

    def _retry_task(self, pool, task: tuple, error: Exception) -> Fragment:
        """Re-run a failed task with bounded retries and linear backoff.

        The pool replaces dead worker processes on its own; this method
        replaces the *result* the dead worker owed us.  Retrying is safe
        for determinism because the fragment depends only on the task
        key, never on which worker (or attempt) computes it.
        """
        state_blob, seed, epoch, stream, max_trajectory_length, _ = task
        for attempt in range(1, self.max_worker_retries + 1):
            telemetry.counter("rl.rollouts.worker_retries")
            time.sleep(self.retry_backoff * attempt)
            retry = (state_blob, seed, epoch, stream, max_trajectory_length, attempt)
            try:
                return pool.apply_async(_run_fragment, (retry,)).get(
                    self.worker_timeout
                )
            except Exception as exc:
                error = exc
        raise error

    # Kept as an alias so existing callers and tests keep working; the
    # shared implementation lives at module level (merge_fragments).
    _merge = staticmethod(merge_fragments)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate and join the pool; idempotent."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
            finally:
                pool.join()

    def __enter__(self) -> "ParallelRolloutCollector":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __del__(self):  # best-effort: tests and crashes must not leak pools
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
def make_collector(
    env: PlanningEnv,
    policy: ActorCriticPolicy,
    rng: np.random.Generator,
    *,
    rollout_backend: str = "auto",
    num_workers: int = 1,
    num_envs: int = 1,
    seed: int = 0,
):
    """Build the collector a trainer asked for via its config knobs."""
    backend = resolve_backend(rollout_backend, num_workers, num_envs)
    if backend == "serial":
        return SerialRolloutCollector(env, policy, rng)
    if backend == "batched":
        from repro.rl.batched import BatchedRolloutCollector

        return BatchedRolloutCollector(
            env,
            policy,
            num_envs=num_envs,
            num_workers=num_workers,
            seed=seed,
        )
    return ParallelRolloutCollector(env, policy, num_workers=num_workers, seed=seed)
