"""The actor-critic network (Fig. 6 of the paper).

A shared :class:`GraphEncoder` (GCN by default, GAT optional) embeds the
transformed topology.  The actor scores every (transformed node, units)
action: each node embedding, concatenated with the pooled graph
embedding, passes through an MLP producing ``max_units`` logits, so the
architecture is size-agnostic -- the same parameters work on any number
of links.  The critic pools node embeddings into a graph embedding and
maps it to a scalar value.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.nn import functional as F
from repro.nn.distributions import Categorical
from repro.nn.gnn import GraphEncoder
from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.seeding import as_generator


class ActorCriticPolicy(Module):
    """GCN/GAT encoder + per-node actor head + pooled critic head."""

    def __init__(
        self,
        feature_dim: int,
        max_units: int,
        gnn_hidden: int = 64,
        gnn_layers: int = 2,
        gnn_type: str = "gcn",
        mlp_hidden: tuple = (64, 64),
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if max_units < 1:
            raise NNError("max_units must be >= 1")
        rng = as_generator(rng)
        self.max_units = max_units
        self._spec = {
            "feature_dim": feature_dim,
            "max_units": max_units,
            "gnn_hidden": gnn_hidden,
            "gnn_layers": gnn_layers,
            "gnn_type": gnn_type,
            "mlp_hidden": tuple(mlp_hidden),
        }
        self.encoder = GraphEncoder(
            feature_dim, gnn_hidden, gnn_layers, gnn_type=gnn_type, rng=rng
        )
        embed = self.encoder.out_features
        # Actor sees [node embedding || graph embedding] per node.
        self.actor = MLP(embed * 2, mlp_hidden, max_units, rng=rng)
        self.critic = MLP(embed, mlp_hidden, 1, rng=rng)

    # ------------------------------------------------------------------
    def _embed(self, features: np.ndarray, adjacency_norm: np.ndarray) -> tuple:
        node_embeddings = self.encoder(Tensor(features), adjacency_norm)
        graph_embedding = F.global_mean_pool(node_embeddings)
        return node_embeddings, graph_embedding

    def action_logits(
        self, features: np.ndarray, adjacency_norm: np.ndarray
    ) -> Tensor:
        """Flat logits over (node, units) actions, shape (n * max_units,)."""
        node_embeddings, graph_embedding = self._embed(features, adjacency_norm)
        n = node_embeddings.shape[0]
        tiled = Tensor.stack([graph_embedding] * n, axis=0)
        actor_in = Tensor.concatenate([node_embeddings, tiled], axis=1)
        return self.actor(actor_in).flatten()

    def value(self, features: np.ndarray, adjacency_norm: np.ndarray) -> Tensor:
        """Scalar state value."""
        _, graph_embedding = self._embed(features, adjacency_norm)
        return self.critic(graph_embedding).sum()

    def distribution(
        self,
        features: np.ndarray,
        adjacency_norm: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> Categorical:
        """Masked categorical over actions."""
        return Categorical(self.action_logits(features, adjacency_norm), mask=mask)

    def forward(
        self,
        features: np.ndarray,
        adjacency_norm: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> tuple:
        """(distribution, value) with a single shared embedding pass."""
        node_embeddings, graph_embedding = self._embed(features, adjacency_norm)
        n = node_embeddings.shape[0]
        tiled = Tensor.stack([graph_embedding] * n, axis=0)
        actor_in = Tensor.concatenate([node_embeddings, tiled], axis=1)
        logits = self.actor(actor_in).flatten()
        value = self.critic(graph_embedding).sum()
        return Categorical(logits, mask=mask), value

    # ------------------------------------------------------------------
    def spec(self) -> dict:
        """Constructor kwargs (minus the init RNG) that rebuild this
        architecture; pair with :meth:`state_dict` to clone the policy
        into a rollout worker."""
        return dict(self._spec)

    # ------------------------------------------------------------------
    def parameter_groups(self) -> dict:
        """Parameters per optimizer group (Algorithm 1 lines 18-22).

        Both the actor and the critic updates also flow into the shared
        GNN parameters, mirroring the paper's theta_g.
        """
        return {
            "actor": list(self.actor.parameters()) + list(self.encoder.parameters()),
            "critic": list(self.critic.parameters()) + list(self.encoder.parameters()),
        }
