"""Generalized advantage estimation (Eq. 6) and rewards-to-go.

``GAE_i = r_i + gamma * v_{i+1} - v_i + gamma * lambda * GAE_{i+1}``,
computed backward over one trajectory.  ``bootstrap_value`` stands in
for ``v_{T}`` when a trajectory was cut off by the epoch boundary
rather than genuinely terminating.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float,
    lam: float,
    bootstrap_value: float = 0.0,
) -> np.ndarray:
    """GAE(lambda) advantages for one trajectory."""
    _check(gamma, lam)
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ConfigError("rewards and values must have equal length")
    steps = len(rewards)
    advantages = np.zeros(steps)
    next_value = bootstrap_value
    running = 0.0
    for i in reversed(range(steps)):
        delta = rewards[i] + gamma * next_value - values[i]
        running = delta + gamma * lam * running
        advantages[i] = running
        next_value = values[i]
    return advantages


def discounted_returns(
    rewards: np.ndarray, gamma: float, bootstrap_value: float = 0.0
) -> np.ndarray:
    """Rewards-to-go (the critic regression target)."""
    _check(gamma, 1.0)
    rewards = np.asarray(rewards, dtype=np.float64)
    returns = np.zeros(len(rewards))
    running = bootstrap_value
    for i in reversed(range(len(rewards))):
        running = rewards[i] + gamma * running
        returns[i] = running
    return returns


def _check(gamma: float, lam: float) -> None:
    if not 0.0 <= gamma <= 1.0:
        raise ConfigError("gamma must be in [0, 1]")
    if not 0.0 <= lam <= 1.0:
        raise ConfigError("lambda must be in [0, 1]")
