"""The epoch buffer of Algorithm 1.

Stores per-step log-probabilities and values (as live autodiff tensors)
plus rewards, grouped into trajectories.  At the end of an epoch the
trainer asks for per-trajectory (log_probs, values, rewards, bootstrap)
tuples to compute the two losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.nn.tensor import Tensor


@dataclass
class Trajectory:
    """One plan-generation attempt."""

    log_probs: list = field(default_factory=list)
    entropies: list = field(default_factory=list)
    values: list = field(default_factory=list)
    rewards: list = field(default_factory=list)
    completed: bool = False  # reached a feasible plan
    bootstrap_value: float = 0.0  # critic estimate when cut off

    def __len__(self) -> int:
        return len(self.rewards)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))


class EpochBuffer:
    """Collects trajectories for one epoch."""

    def __init__(self):
        self.trajectories: list[Trajectory] = []
        self._current: "Trajectory | None" = None

    def start_trajectory(self) -> None:
        if self._current is not None and len(self._current):
            raise ConfigError("previous trajectory was not finished")
        self._current = Trajectory()

    def append(
        self,
        log_prob: Tensor,
        entropy: Tensor,
        value: Tensor,
        reward: float,
    ) -> None:
        if self._current is None:
            raise ConfigError("start_trajectory() must be called first")
        self._current.log_probs.append(log_prob)
        self._current.entropies.append(entropy)
        self._current.values.append(value)
        self._current.rewards.append(float(reward))

    def finish_trajectory(
        self, completed: bool, bootstrap_value: float = 0.0
    ) -> None:
        """Seal the current trajectory.

        ``bootstrap_value`` should be the critic's estimate of the final
        state when the trajectory was cut off (by the step limit or the
        epoch boundary); it is 0 for genuinely terminal states.
        """
        if self._current is None:
            raise ConfigError("no trajectory in progress")
        if len(self._current):
            self._current.completed = completed
            self._current.bootstrap_value = float(bootstrap_value)
            self.trajectories.append(self._current)
        self._current = None

    def clear(self) -> None:
        self.trajectories = []
        self._current = None

    @property
    def num_steps(self) -> int:
        return sum(len(t) for t in self.trajectories)

    @property
    def num_trajectories(self) -> int:
        return len(self.trajectories)

    @property
    def epoch_reward(self) -> float:
        """Mean total reward per trajectory (the Fig. 11/12 y-axis)."""
        if not self.trajectories:
            return 0.0
        return float(np.mean([t.total_reward for t in self.trajectories]))

    @property
    def completion_rate(self) -> float:
        if not self.trajectories:
            return 0.0
        return float(np.mean([t.completed for t in self.trajectories]))
