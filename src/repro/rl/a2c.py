"""The actor-critic trainer (Algorithm 1 of the paper).

Per epoch: sample trajectories with the current actor into the epoch
buffer; compute the policy-gradient loss from GAE(lambda) advantages and
update the actor (and shared GNN); compute the value loss from
rewards-to-go and update the critic (and shared GNN) -- exactly the
ComputePLoss / ComputeVLoss split of the pseudocode, including the two
optimizers both flowing into theta_g.

The trainer tracks the best feasible plan seen across all sampled
trajectories; that plan is the *first stage* output handed to the ILP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.batched import BatchedForward
from repro.rl.buffer import EpochBuffer
from repro.rl.checkpointing import CheckpointingTrainer
from repro.rl.env import PlanningEnv
from repro.rl.gae import discounted_returns, gae_advantages
from repro.rl.policy import ActorCriticPolicy
from repro.rl.rollouts import RolloutBatch, make_collector, resolve_backend
from repro.seeding import as_generator


@dataclass
class A2CConfig:
    """Training hyperparameters (defaults follow Table 2)."""

    epochs: int = 64
    steps_per_epoch: int = 2048
    max_trajectory_length: int = 2048
    actor_lr: float = 3e-4
    critic_lr: float = 1e-3
    gamma: float = 0.99
    gae_lambda: float = 0.97
    entropy_coef: float = 0.01
    max_grad_norm: float = 10.0
    normalize_advantages: bool = True
    patience: int = 0  # early stop after N stagnant epochs (0 = off)
    seed: int = 0
    num_workers: int = 1
    num_envs: int = 1  # lockstep environments per rollout group
    rollout_backend: str = "auto"  # auto | serial | parallel | batched
    checkpoint_every: int = 0  # write a resume checkpoint every N epochs
    checkpoint_dir: "str | None" = None
    resume_from: "str | None" = None  # checkpoint file or directory

    def __post_init__(self):
        if self.epochs < 1 or self.steps_per_epoch < 1:
            raise ConfigError("epochs and steps_per_epoch must be >= 1")
        if self.max_trajectory_length < 1:
            raise ConfigError("max_trajectory_length must be >= 1")
        resolve_backend(self.rollout_backend, self.num_workers, self.num_envs)
        if self.num_workers > self.steps_per_epoch:
            raise ConfigError(
                f"num_workers={self.num_workers} exceeds the available "
                f"trajectories per epoch (steps_per_epoch="
                f"{self.steps_per_epoch})"
            )
        if self.num_envs > self.steps_per_epoch:
            raise ConfigError(
                f"num_envs={self.num_envs} exceeds the available "
                f"trajectories per epoch (steps_per_epoch="
                f"{self.steps_per_epoch})"
            )
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ConfigError("checkpoint_every needs a checkpoint_dir")


@dataclass
class TrainingResult:
    """What training produced."""

    best_capacities: "dict[str, float] | None"
    best_cost: float
    epochs_run: int
    converged: bool
    history: list[dict] = field(default_factory=list)
    train_seconds: float = 0.0
    already_feasible: bool = False

    @property
    def epoch_rewards(self) -> list[float]:
        return [entry["epoch_reward"] for entry in self.history]


class A2CTrainer(CheckpointingTrainer):
    """Runs Algorithm 1 on a :class:`PlanningEnv`."""

    def __init__(
        self,
        env: PlanningEnv,
        policy: ActorCriticPolicy,
        config: "A2CConfig | None" = None,
    ):
        self.env = env
        self.policy = policy
        self.config = config or A2CConfig()
        groups = policy.parameter_groups()
        self.actor_optimizer = Adam(groups["actor"], lr=self.config.actor_lr)
        self.critic_optimizer = Adam(groups["critic"], lr=self.config.critic_lr)
        self.rng = as_generator(self.config.seed)
        self._collector = None
        # Built on demand for num_envs > 1: one autodiff graph over the
        # whole epoch instead of one per transition (also validates the
        # gnn_type restriction up front).
        self._batched_forward = (
            BatchedForward(policy, env.adjacency_norm)
            if self.config.num_envs > 1
            else None
        )

    # ------------------------------------------------------------------
    def train(self) -> TrainingResult:
        config = self.config
        env = self.env
        start = time.perf_counter()

        env.reset()
        if env.done:
            # The starting topology already satisfies the expectations.
            return TrainingResult(
                best_capacities=env.capacities(),
                best_cost=env.plan_cost(),
                epochs_run=0,
                converged=True,
                already_feasible=True,
                train_seconds=time.perf_counter() - start,
            )

        self._collector = make_collector(
            env,
            self.policy,
            self.rng,
            rollout_backend=config.rollout_backend,
            num_workers=config.num_workers,
            num_envs=config.num_envs,
            seed=config.seed,
        )
        try:
            history, best_cost, best_capacities = self._train_epochs()
        finally:
            self._collector.close()
            self._collector = None

        return TrainingResult(
            best_capacities=best_capacities,
            best_cost=best_cost,
            epochs_run=len(history),
            converged=best_capacities is not None,
            history=history,
            train_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    ALGO = "a2c"

    def _optimizers(self) -> dict:
        return {"actor": self.actor_optimizer, "critic": self.critic_optimizer}

    def _train_epochs(self) -> tuple:
        config = self.config
        env = self.env
        best_capacities: "dict[str, float] | None" = None
        best_cost = float("inf")
        history: list[dict] = []
        stagnant = 0
        start_epoch = 0

        resume = self._load_resume()
        if resume is not None:
            best_cost = resume.best_cost
            best_capacities = resume.best_capacities
            history = [dict(entry) for entry in resume.history]
            stagnant = resume.stagnant
            start_epoch = resume.epoch

        for epoch in range(start_epoch, config.epochs):
            # A resumed run whose checkpoint already crossed the
            # patience threshold stops exactly where the uninterrupted
            # run's bottom-of-loop break did.
            if config.patience and stagnant >= config.patience:
                break
            batch = self._collector.collect(
                budget=config.steps_per_epoch,
                max_trajectory_length=config.max_trajectory_length,
                epoch=epoch,
            )
            for fragment in batch.fragments:
                if fragment.completed and fragment.plan_cost < best_cost:
                    best_cost = fragment.plan_cost
                    best_capacities = fragment.capacities

            if config.num_envs > 1:
                # One batched re-evaluation over the whole epoch (block-
                # diagonal adjacency) replaces the per-transition graphs.
                metrics = self._update_batched(batch)
                fragments = batch.fragments
                rewards = [
                    sum(t.reward for t in fragment.transitions)
                    for fragment in fragments
                ]
                epoch_reward = float(np.mean(rewards)) if rewards else 0.0
                completion_rate = (
                    float(np.mean([f.completed for f in fragments]))
                    if fragments
                    else 0.0
                )
                num_trajectories = len(fragments)
                num_steps = batch.num_steps
            else:
                # Re-evaluate the collected states under the current
                # (same) parameters to build the live autodiff graph the
                # two-loss update differentiates; collection itself runs
                # grad-free (and possibly out of process).
                buffer = EpochBuffer()
                for fragment in batch.fragments:
                    buffer.start_trajectory()
                    for transition in fragment.transitions:
                        distribution, value = self.policy(
                            transition.observation,
                            env.adjacency_norm,
                            transition.mask,
                        )
                        buffer.append(
                            distribution.log_prob(transition.action),
                            distribution.entropy(),
                            value,
                            transition.reward,
                        )
                    buffer.finish_trajectory(
                        completed=fragment.completed,
                        bootstrap_value=fragment.final_value,
                    )

                metrics = self._update(buffer)
                epoch_reward = buffer.epoch_reward
                completion_rate = buffer.completion_rate
                num_trajectories = buffer.num_trajectories
                num_steps = buffer.num_steps

            entry = {
                "epoch": epoch,
                "epoch_reward": epoch_reward,
                "completion_rate": completion_rate,
                "num_trajectories": num_trajectories,
                "best_cost": best_cost if best_capacities else None,
                **metrics,
            }
            history.append(entry)
            if telemetry.enabled():
                telemetry.counter("rl.a2c.epochs")
                telemetry.counter("rl.env_steps", num_steps)
                telemetry.counter("rl.episodes", num_trajectories)
                telemetry.event("rl.a2c.epoch", **entry)

            # Early stopping on stagnation of the best plan.
            if config.patience:
                improved = entry["best_cost"] is not None and (
                    len(history) < 2
                    or history[-2]["best_cost"] is None
                    or entry["best_cost"] < history[-2]["best_cost"] - 1e-9
                )
                stagnant = 0 if improved else stagnant + 1

            self._write_checkpoint(
                epoch, best_cost, best_capacities, history, stagnant
            )
            if config.patience and stagnant >= config.patience:
                break

        return history, best_cost, best_capacities

    # ------------------------------------------------------------------
    def _update(self, buffer: EpochBuffer) -> dict:
        """One ComputePLoss/ComputeVLoss update pair (Algorithm 1)."""
        config = self.config
        if buffer.num_steps == 0:
            return {"policy_loss": 0.0, "value_loss": 0.0}

        all_log_probs, all_entropies, all_values = [], [], []
        all_advantages, all_returns = [], []
        for trajectory in buffer.trajectories:
            values = np.array([v.item() for v in trajectory.values])
            rewards = np.array(trajectory.rewards)
            advantages = gae_advantages(
                rewards,
                values,
                config.gamma,
                config.gae_lambda,
                bootstrap_value=trajectory.bootstrap_value,
            )
            returns = discounted_returns(
                rewards, config.gamma, bootstrap_value=trajectory.bootstrap_value
            )
            all_log_probs.extend(trajectory.log_probs)
            all_entropies.extend(trajectory.entropies)
            all_values.extend(trajectory.values)
            all_advantages.append(advantages)
            all_returns.append(returns)

        advantages = np.concatenate(all_advantages)
        returns = np.concatenate(all_returns)
        if config.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8
            )

        log_probs = Tensor.stack(all_log_probs)
        entropies = Tensor.stack(all_entropies)
        values = Tensor.stack(all_values)

        # -- ComputePLoss: update actor + shared GNN --
        policy_loss = -(log_probs * Tensor(advantages)).mean()
        entropy_bonus = entropies.mean()
        actor_objective = policy_loss - config.entropy_coef * entropy_bonus
        self.actor_optimizer.zero_grad()
        self.critic_optimizer.zero_grad()
        actor_objective.backward()
        self.actor_optimizer.clip_grad_norm(config.max_grad_norm)
        self.actor_optimizer.step()

        # -- ComputeVLoss: update critic + shared GNN --
        value_loss = F.mse_loss(values, returns)
        self.actor_optimizer.zero_grad()
        self.critic_optimizer.zero_grad()
        value_loss.backward()
        self.critic_optimizer.clip_grad_norm(config.max_grad_norm)
        self.critic_optimizer.step()

        return {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy_bonus.item(),
        }

    # ------------------------------------------------------------------
    def _update_batched(self, batch: RolloutBatch) -> dict:
        """The Algorithm 1 update over one batched forward (num_envs > 1).

        Same two-loss split and the same GAE arithmetic as
        :meth:`_update`, but log-probs, entropies and values for every
        collected transition come from a single block-diagonal graph
        forward instead of one tiny graph per transition.
        """
        config = self.config
        steps = batch.transitions()
        if not steps:
            return {"policy_loss": 0.0, "value_loss": 0.0}

        observations = np.stack([t.observation for t in steps])
        masks = np.stack([t.mask for t in steps])
        actions = np.array([t.action for t in steps], dtype=np.int64)
        log_probs, entropies, values = self._batched_forward.evaluate(
            observations, masks, actions
        )

        advantages = np.zeros(len(steps))
        returns = np.zeros(len(steps))
        for start, end, _done, bootstrap in batch.bounds():
            rewards = np.array([t.reward for t in steps[start:end]])
            trajectory_values = values.data[start:end]
            advantages[start:end] = gae_advantages(
                rewards,
                trajectory_values,
                config.gamma,
                config.gae_lambda,
                bootstrap_value=bootstrap,
            )
            returns[start:end] = discounted_returns(
                rewards, config.gamma, bootstrap_value=bootstrap
            )
        if config.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8
            )

        # -- ComputePLoss: update actor + shared GNN --
        policy_loss = -(log_probs * Tensor(advantages)).mean()
        entropy_bonus = entropies.mean()
        actor_objective = policy_loss - config.entropy_coef * entropy_bonus
        self.actor_optimizer.zero_grad()
        self.critic_optimizer.zero_grad()
        actor_objective.backward()
        self.actor_optimizer.clip_grad_norm(config.max_grad_norm)
        self.actor_optimizer.step()

        # -- ComputeVLoss: update critic + shared GNN --
        value_loss = F.mse_loss(values, returns)
        self.actor_optimizer.zero_grad()
        self.critic_optimizer.zero_grad()
        value_loss.backward()
        self.critic_optimizer.clip_grad_norm(config.max_grad_norm)
        self.critic_optimizer.step()

        return {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy_bonus.item(),
        }
