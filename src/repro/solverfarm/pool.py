"""Cross-request lease pool of persistent warm-basis planning backends.

Before the solver farm, every request that wanted LP work rebuilt the
feasibility model from scratch (or monopolized the registry agent's
single env behind a lock).  The pool keeps up to ``capacity`` warm
backends *per model signature* ``(model dirname, version, seed)`` and
leases them to pipeline stages:

- ``lease(signature)`` hands out an idle backend, builds a fresh one
  while below capacity, and otherwise blocks (bounded by
  ``lease_wait_s``) until a lease frees — raising a typed
  :class:`Overloaded` on timeout so admission control stays visible.
- ``release(lease)`` returns the backend; ``discard=True`` retires it
  instead (used after a stage crashed mid-work, so a possibly dirty
  backend is rebuilt rather than reused).
- Stalled leases — held longer than ``stall_timeout_s``, e.g. by a
  stage that hit an injected crash *after* a lost release — are
  reclaimed on the next lease attempt: the old backend is closed and
  its capacity slot freed, so the pool always recovers to full
  capacity without leaking HiGHS models.

Fault sites (``NEUROPLAN_FAULTS``):

- ``solverfarm.lease.stall`` (keyed by signature dirname) — swallows a
  release, simulating a holder that died without returning its lease;
  exercises the reclaim path.
"""

from __future__ import annotations

import threading
import time

from repro import telemetry
from repro.errors import Overloaded
from repro.resilience import faults


class BackendLease:
    """Handle for one leased backend; release through the pool."""

    __slots__ = ("backend", "signature", "token", "leased_at")

    def __init__(self, backend, signature, token: int, leased_at: float):
        self.backend = backend
        self.signature = signature
        self.token = token
        self.leased_at = leased_at


class _Entry:
    __slots__ = ("backend", "token", "state", "leased_at")

    def __init__(self, backend, token: int):
        self.backend = backend
        self.token = token
        self.state = "idle"  # idle | leased | building
        self.leased_at = 0.0


class BackendPool:
    """Signature-keyed lease pool over :class:`PlanningBackend`-likes."""

    def __init__(
        self,
        builder,
        capacity: int = 2,
        lease_wait_s: float = 30.0,
        stall_timeout_s: float = 120.0,
    ):
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self._builder = builder
        self.capacity = capacity
        self.lease_wait_s = lease_wait_s
        self.stall_timeout_s = stall_timeout_s
        self._entries: dict[tuple, list[_Entry]] = {}
        self._cond = threading.Condition()
        self._next_token = 0
        self._closed = False
        self.leases = 0
        self.releases = 0
        self.reclaims = 0
        self.late_releases = 0
        self.discards = 0
        # Per-signature release ordinals, fed to the stall fault site as
        # its attempt number so ``...stall@sig#N`` stalls the first N
        # releases deterministically.
        self._stall_attempts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def lease(self, signature: tuple, wait_s: "float | None" = None):
        """Lease a backend for ``signature`` (see module docstring)."""
        deadline = time.monotonic() + (
            wait_s if wait_s is not None else self.lease_wait_s
        )
        to_close = []
        try:
            with self._cond:
                while True:
                    if self._closed:
                        raise Overloaded("solver-farm backend pool is closed")
                    entries = self._entries.setdefault(signature, [])
                    to_close.extend(self._reclaim_locked(entries))
                    for entry in entries:
                        if entry.state == "idle":
                            return self._lease_entry(signature, entry)
                    if len(entries) < self.capacity:
                        return self._build_and_lease(signature, entries)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        telemetry.counter("solverfarm.lease.timeout")
                        raise Overloaded(
                            f"no backend for {signature} freed within the "
                            f"lease wait budget ({self.lease_wait_s}s)"
                        )
                    self._cond.wait(min(remaining, 1.0))
        finally:
            for backend in to_close:
                _close_quietly(backend)

    def leased(self, signature: tuple, wait_s: "float | None" = None):
        """Context manager: lease, then release (discard on exception)."""
        return _LeaseContext(self, signature, wait_s)

    def release(self, lease: BackendLease, discard: bool = False) -> None:
        stall_key = str(lease.signature[0])
        with self._cond:
            attempt = self._stall_attempts.get(stall_key, 0)
            self._stall_attempts[stall_key] = attempt + 1
        if faults.fires("solverfarm.lease.stall", key=stall_key, attempt=attempt):
            # The holder "died" before returning its lease: the backend
            # stays marked leased until the stall reclaim frees it.
            telemetry.counter("solverfarm.lease.stalled")
            return
        to_close = None
        with self._cond:
            entries = self._entries.get(lease.signature, [])
            entry = next(
                (e for e in entries if e.token == lease.token), None
            )
            if entry is None:
                # Reclaimed while held: the pool already rebuilt the
                # slot, so this copy of the backend just gets closed.
                self.late_releases += 1
                telemetry.counter("solverfarm.lease.late_release")
                to_close = lease.backend
            elif discard:
                entries.remove(entry)
                self.discards += 1
                telemetry.counter("solverfarm.lease.discarded")
                to_close = entry.backend
            else:
                entry.state = "idle"
                self.releases += 1
                telemetry.counter("solverfarm.lease.released")
            self._update_gauges()
            self._cond.notify_all()
        if to_close is not None:
            _close_quietly(to_close)

    # ------------------------------------------------------------------
    def _reclaim_locked(self, entries: list) -> list:
        """Drop stalled leases; returns backends to close outside the lock."""
        now = time.monotonic()
        stalled = [
            e
            for e in entries
            if e.state == "leased" and now - e.leased_at > self.stall_timeout_s
        ]
        for entry in stalled:
            entries.remove(entry)
            self.reclaims += 1
            telemetry.counter("solverfarm.lease.reclaimed")
        return [e.backend for e in stalled]

    def _lease_entry(self, signature: tuple, entry: _Entry) -> BackendLease:
        entry.state = "leased"
        entry.leased_at = time.monotonic()
        self.leases += 1
        telemetry.counter("solverfarm.lease.acquired")
        self._update_gauges()
        return BackendLease(
            entry.backend, signature, entry.token, entry.leased_at
        )

    def _build_and_lease(self, signature: tuple, entries: list) -> BackendLease:
        """Build a new backend (outside the lock) into a reserved slot."""
        self._next_token += 1
        placeholder = _Entry(None, self._next_token)
        placeholder.state = "building"
        entries.append(placeholder)
        self._cond.release()
        try:
            backend = self._builder(signature)
        except BaseException:
            self._cond.acquire()
            if placeholder in entries:
                entries.remove(placeholder)
            self._cond.notify_all()
            raise
        self._cond.acquire()
        placeholder.backend = backend
        return self._lease_entry(signature, placeholder)

    def _update_gauges(self) -> None:
        total = sum(len(v) for v in self._entries.values())
        leased = sum(
            1
            for v in self._entries.values()
            for e in v
            if e.state == "leased"
        )
        telemetry.gauge("solverfarm.pool.size", total)
        telemetry.gauge("solverfarm.pool.leased", leased)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            signatures = {
                "/".join(str(part) for part in sig): {
                    "backends": len(entries),
                    "idle": sum(1 for e in entries if e.state == "idle"),
                    "leased": sum(1 for e in entries if e.state == "leased"),
                    "building": sum(
                        1 for e in entries if e.state == "building"
                    ),
                }
                for sig, entries in self._entries.items()
            }
            return {
                "capacity_per_signature": self.capacity,
                "signatures": signatures,
                "leases": self.leases,
                "releases": self.releases,
                "reclaims": self.reclaims,
                "late_releases": self.late_releases,
                "discards": self.discards,
            }

    def close(self) -> None:
        with self._cond:
            self._closed = True
            backends = [
                e.backend
                for entries in self._entries.values()
                for e in entries
                if e.backend is not None
            ]
            self._entries.clear()
            self._cond.notify_all()
        for backend in backends:
            _close_quietly(backend)


class _LeaseContext:
    def __init__(self, pool: BackendPool, signature: tuple, wait_s):
        self._pool = pool
        self._signature = signature
        self._wait_s = wait_s
        self._lease: "BackendLease | None" = None

    def __enter__(self):
        self._lease = self._pool.lease(self._signature, self._wait_s)
        return self._lease.backend

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._lease is not None:
            self._pool.release(self._lease, discard=exc_type is not None)


def _close_quietly(backend) -> None:
    try:
        if backend is not None:
            backend.close()
    except Exception:
        pass
