"""Drift specs and warm-start validation for incremental replanning.

A replan request describes its demand matrix as a *drift spec* relative
to the model's baseline instance rather than as a full matrix:

- ``None`` -- the baseline demands themselves;
- ``{"scale": f}`` -- every demand multiplied by ``f > 0``;
- ``{"flows": [{"src", "dst", "cos"?, "demand"}, ...]}`` -- sparse
  per-flow overrides (unlisted flows keep their baseline demand).

Specs never add or remove flows, only move demand values, which is
exactly the family of drifts the compiled feasibility LP can absorb as
a pure bound swap (:meth:`FeasibilityChecker.retarget_demands`).

Warm-start soundness
--------------------
With the ``capacity`` feature set, observations and action masks are
demand-independent, so for a fixed policy the greedy rollout walks a
demand-independent trajectory of capacity states ``C_0 < C_1 < ...``;
the demand matrix only picks the stopping step (first feasible state).
If the drifted demands dominate the prior demands pointwise, every
state infeasible for the prior is infeasible for the drift, so the
from-scratch drifted rollout passes *through* the prior plan's state —
resuming from it yields the exact from-scratch plan.  ``is_growth``
checks that dominance; non-growth drifts fall back to a cold rollout on
the (already leased, already retargeted) backend, which is equally
exact and still skips the per-request model rebuild.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.errors import ReplanError
from repro.serve.cache import canonical_key
from repro.topology.traffic import TrafficMatrix

# Fingerprint of "the baseline demands, untouched".
BASELINE_FP = "baseline"

_GROWTH_TOLERANCE = 1e-9


def validate_drift_spec(spec: "dict | None") -> None:
    """Shape-check a drift spec (request parse time; cheap)."""
    if spec is None:
        return
    if not isinstance(spec, dict):
        raise ReplanError("demand drift spec must be a JSON object or null")
    keys = set(spec)
    if keys == {"scale"}:
        factor = spec["scale"]
        if not isinstance(factor, (int, float)) or isinstance(factor, bool):
            raise ReplanError("drift 'scale' must be a number")
        if not (math.isfinite(factor) and factor > 0):
            raise ReplanError("drift 'scale' must be finite and > 0")
        return
    if keys == {"flows"}:
        overrides = spec["flows"]
        if not isinstance(overrides, list) or not overrides:
            raise ReplanError("drift 'flows' must be a non-empty list")
        for entry in overrides:
            if not isinstance(entry, dict):
                raise ReplanError("each drift flow override must be an object")
            missing = {"src", "dst", "demand"} - set(entry)
            if missing:
                raise ReplanError(
                    f"drift flow override is missing {sorted(missing)}"
                )
            unknown = set(entry) - {"src", "dst", "cos", "demand"}
            if unknown:
                raise ReplanError(
                    f"drift flow override has unknown fields {sorted(unknown)}"
                )
            demand = entry["demand"]
            if not isinstance(demand, (int, float)) or isinstance(demand, bool):
                raise ReplanError("drift flow 'demand' must be a number")
            if not (math.isfinite(demand) and demand >= 0):
                raise ReplanError("drift flow 'demand' must be finite and >= 0")
        return
    raise ReplanError(
        "drift spec must be exactly {'scale': f} or {'flows': [...]}, "
        f"got keys {sorted(keys)}"
    )


def drift_traffic(baseline: TrafficMatrix, spec: "dict | None") -> TrafficMatrix:
    """Materialize a drift spec against the baseline demand matrix.

    Preserves the baseline's flow order exactly — the compiled LP's
    retarget path requires an identical ordered key set.
    """
    if spec is None:
        return baseline
    flows = list(baseline)
    if "scale" in spec:
        factor = float(spec["scale"])
        return TrafficMatrix(
            [replace(flow, demand=flow.demand * factor) for flow in flows]
        )
    by_key = {(f.src, f.dst, f.cos.name): i for i, f in enumerate(flows)}
    out = list(flows)
    for entry in spec["flows"]:
        cos = entry.get("cos")
        if cos is None:
            candidates = [
                key for key in by_key if key[:2] == (entry["src"], entry["dst"])
            ]
            if len(candidates) != 1:
                raise ReplanError(
                    f"drift override ({entry['src']}, {entry['dst']}) is "
                    f"ambiguous or unknown ({len(candidates)} matching flows); "
                    "specify 'cos'"
                )
            key = candidates[0]
        else:
            key = (entry["src"], entry["dst"], cos)
            if key not in by_key:
                raise ReplanError(
                    f"drift override names unknown flow {key} "
                    "(drifts may move demand, not add flows)"
                )
        index = by_key[key]
        out[index] = replace(out[index], demand=float(entry["demand"]))
    return TrafficMatrix(out)


def demand_fingerprint(baseline: TrafficMatrix, traffic: TrafficMatrix) -> str:
    """Canonical identity of a demand matrix (solver-cache key part)."""
    if traffic is baseline:
        return BASELINE_FP
    return canonical_key(
        {
            "demands": [
                [f.src, f.dst, f.cos.name, f.demand] for f in traffic
            ]
        }
    )


def is_growth(new: TrafficMatrix, prior: TrafficMatrix) -> bool:
    """True iff ``new`` dominates ``prior`` pointwise (same flow keys)."""
    new_flows, prior_flows = list(new), list(prior)
    if len(new_flows) != len(prior_flows):
        return False
    for a, b in zip(new_flows, prior_flows):
        if (a.src, a.dst, a.cos.name) != (b.src, b.dst, b.cos.name):
            return False
        if a.demand < b.demand - _GROWTH_TOLERANCE:
            return False
    return True


def validate_prior_plan(instance, capacities: dict) -> dict:
    """Check a client-supplied prior plan against the target instance.

    Returns a normalized ``{link_id: float}`` dict; raises
    :class:`ReplanError` on unknown links, capacities below the
    original network, or values off the instance's capacity-unit grid.
    """
    if not isinstance(capacities, dict) or not capacities:
        raise ReplanError("prior_plan must be a non-empty {link_id: Gbps} object")
    base = instance.network.capacities()
    unit = instance.capacity_unit
    normalized: dict[str, float] = {}
    for link_id, value in capacities.items():
        if link_id not in base:
            raise ReplanError(f"prior_plan names unknown link {link_id!r}")
        try:
            cap = float(value)
        except (TypeError, ValueError):
            raise ReplanError(
                f"prior_plan capacity for {link_id!r} is not a number"
            ) from None
        if not math.isfinite(cap) or cap < base[link_id] - _GROWTH_TOLERANCE:
            raise ReplanError(
                f"prior_plan capacity for {link_id!r} ({cap}) is below the "
                f"original network capacity ({base[link_id]})"
            )
        added = cap - base[link_id]
        units = added / unit
        if abs(units - round(units)) > 1e-6:
            raise ReplanError(
                f"prior_plan capacity for {link_id!r} is not on the "
                f"{unit} Gbps capacity-unit grid"
            )
        normalized[link_id] = cap
    return normalized
