"""Solver-layer result cache keyed on canonical plan identity.

The PR-4 response cache memoizes whole responses keyed by *request*
identity.  This cache sits one layer down, inside the pipeline, and
memoizes the three expensive solver artifacts by what they actually
depend on — so work computed for one request is reused by *any*
request that reaches the same canonical state, across entry points
(plan vs replan) and across request shapes:

- **rollout** ``(signature, demands, max_steps) -> first-stage plan``:
  the greedy rollout is deterministic in the model signature and the
  demand matrix, so a replan for already-seen demands skips the
  rollout entirely.  Warm-started results are only admitted when the
  supplied prior is verified on-path (see the pipeline), keeping the
  demands-keyed entry equal to the from-scratch plan.
- **feasibility** ``(signature, demands, capacities) -> verdict``: a
  verdict is a property of the demand matrix and the capacity vector,
  independent of how the plan was produced — always safe to cache.
- **polish** ``(signature, demands, capacities, alpha) -> ILP plan``:
  only proven-optimal, non-degraded polishes are cached; a timeout
  fallback under one request's budget must not masquerade as the
  optimum for the next.

Counters surface as ``solverfarm.cache.<segment>.{hits,misses,
evictions}`` via the shared LRU implementation.
"""

from __future__ import annotations

from repro.serve.cache import ResponseCache, canonical_key


def _capacities_fields(capacities: dict) -> dict:
    # Round onto a fine grid so float noise can't split identical plans.
    return {link: round(float(cap), 6) for link, cap in capacities.items()}


def rollout_key(signature: tuple, demand_fp: str, max_steps) -> str:
    return canonical_key(
        {
            "kind": "rollout",
            "signature": list(signature),
            "demands": demand_fp,
            "max_steps": max_steps,
        }
    )


def feasibility_key(signature: tuple, demand_fp: str, capacities: dict) -> str:
    return canonical_key(
        {
            "kind": "feasibility",
            "signature": list(signature),
            "demands": demand_fp,
            "capacities": _capacities_fields(capacities),
        }
    )


def polish_key(
    signature: tuple, demand_fp: str, capacities: dict, alpha: float
) -> str:
    return canonical_key(
        {
            "kind": "polish",
            "signature": list(signature),
            "demands": demand_fp,
            "capacities": _capacities_fields(capacities),
            "alpha": alpha,
        }
    )


class SolverResultCache:
    """Three LRU segments with ``solverfarm.cache.*`` telemetry."""

    def __init__(self, capacity: int = 256):
        self.rollout = ResponseCache(
            capacity, telemetry_prefix="solverfarm.cache.rollout"
        )
        self.feasibility = ResponseCache(
            capacity, telemetry_prefix="solverfarm.cache.feasibility"
        )
        self.polish = ResponseCache(
            capacity, telemetry_prefix="solverfarm.cache.polish"
        )

    def stats(self) -> dict:
        return {
            "rollout": self.rollout.stats(),
            "feasibility": self.feasibility.stats(),
            "polish": self.polish.stats(),
        }

    def clear(self) -> None:
        self.rollout.clear()
        self.feasibility.clear()
        self.polish.clear()
