"""A leasable planning backend: policy + env + persistent warm-basis LP.

One backend is everything needed to turn demands into a first-stage
plan for one model signature: the loaded policy (shared, read-only —
the numpy forward is pure), a private :class:`PlanningEnv` whose
compiled feasibility LP rides the persistent warm-basis HiGHS backend,
and the drift bookkeeping that lets the farm retarget the LP's demand
bounds in place instead of rebuilding it per request.

Construction goes through the serving registry so the expensive bits
are paid once per signature: the checkpoint load/validation and the
reward-scale probe happen in :meth:`PolicyRegistry.agent`; extra pool
backends reuse that policy and stamp out fresh envs from
``replica_kwargs()`` (resolved reward scale included, so no second
greedy probe).
"""

from __future__ import annotations

from dataclasses import replace

from repro import telemetry
from repro.planning.plan import NetworkPlan
from repro.rl.agent import greedy_rollout
from repro.rl.env import PlanningEnv
from repro.serve.registry import ModelKey, ModelRecord, PolicyRegistry
from repro.solverfarm.replan import BASELINE_FP
from repro.topology.instance import PlanningInstance
from repro.topology.traffic import TrafficMatrix


class PlanningBackend:
    """One leased unit of planning capacity for a model signature."""

    def __init__(
        self,
        instance: PlanningInstance,
        policy,
        env: PlanningEnv,
        record: ModelRecord,
        signature: tuple,
    ):
        self.baseline_instance = instance
        self.baseline_traffic = instance.traffic
        self.policy = policy
        self.env = env
        self.record = record
        self.signature = signature
        self.current_fp = BASELINE_FP

    # ------------------------------------------------------------------
    @property
    def instance(self) -> PlanningInstance:
        """The instance at the backend's *current* demand target."""
        return self.env.instance

    @property
    def lp_solves(self) -> int:
        return self.env.evaluator.lp_solves

    def ensure_demands(self, traffic: "TrafficMatrix | None", fp: str) -> int:
        """Point the compiled LP at ``traffic`` (``None`` = baseline).

        No-op when the backend already targets the same fingerprint —
        the common case for a drift stream replayed against one leased
        backend.  Returns the number of flow demands changed.
        """
        if fp == self.current_fp:
            return 0
        target = traffic if traffic is not None else self.baseline_traffic
        changed = self.env.retarget_demands(target)
        self.current_fp = fp
        return changed

    def rollout(
        self,
        max_steps: "int | None" = None,
        start_capacities: "dict[str, float] | None" = None,
    ) -> NetworkPlan:
        return greedy_rollout(
            self.env, self.policy, max_steps, start_capacities=start_capacities
        )

    def instance_for(self, traffic: "TrafficMatrix | None") -> PlanningInstance:
        """A standalone instance at ``traffic`` (for the second-stage ILP)."""
        if traffic is None:
            return self.baseline_instance
        return replace(self.baseline_instance, traffic=traffic)

    def close(self) -> None:
        close = getattr(self.env.evaluator, "close", None)
        if callable(close):
            close()


def build_backend(
    registry: PolicyRegistry,
    key: ModelKey,
    seed: int,
    version: "int | str",
) -> PlanningBackend:
    """Build a pool backend, reusing the registry's loaded policy."""
    agent, record = registry.agent(key, seed=seed, version=version)
    env = PlanningEnv(agent.instance, **agent.env.replica_kwargs())
    telemetry.counter("solverfarm.pool.builds")
    signature = (key.dirname(), record.version, int(seed))
    return PlanningBackend(agent.instance, agent.policy, env, record, signature)
