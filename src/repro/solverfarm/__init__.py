"""Async planning pipeline with a cross-request solver farm.

``repro.solverfarm`` decouples the serially-executed plan request into
staged, queued work over shared warm solver state:

- :mod:`repro.solverfarm.pool` — lease pool of persistent warm-basis
  planning backends, shared across concurrent requests per model
  signature, with stalled-lease reclaim (never leaks a HiGHS model);
- :mod:`repro.solverfarm.cache` — solver-layer result cache keyed on
  canonical plan identity (rollout / feasibility / ILP-polish
  segments, ``solverfarm.cache.*`` telemetry);
- :mod:`repro.solverfarm.pipeline` — the bounded-queue rollout ->
  check -> polish pipeline with per-priority fairness and typed
  backpressure;
- :mod:`repro.solverfarm.replan` — incremental replanning: demand
  drift specs, the pointwise-growth warm-start rule, and prior-plan
  validation.

The farm wires under :class:`repro.serve.PlanningService` behind
``ServiceConfig(pipeline="farm")`` and powers ``POST /v1/replan`` in
every pipeline mode.
"""

from repro.solverfarm.backend import PlanningBackend, build_backend
from repro.solverfarm.cache import SolverResultCache
from repro.solverfarm.pipeline import FarmConfig, FarmJob, SolverFarm
from repro.solverfarm.pool import BackendLease, BackendPool
from repro.solverfarm.replan import (
    drift_traffic,
    is_growth,
    validate_drift_spec,
    validate_prior_plan,
)

__all__ = [
    "BackendLease",
    "BackendPool",
    "FarmConfig",
    "FarmJob",
    "PlanningBackend",
    "SolverFarm",
    "SolverResultCache",
    "build_backend",
    "drift_traffic",
    "is_growth",
    "validate_drift_spec",
    "validate_prior_plan",
]
