"""The async staged planning pipeline (rollout -> check -> polish).

One plan request used to run rollout, feasibility verdict and the
budgeted second-stage ILP serially inside a single worker thread.  The
farm decomposes the request into three stages connected by bounded
per-priority queues:

- **rollout** — lease a warm backend from the :class:`BackendPool`,
  retarget its compiled LP at the request's (possibly drifted) demand
  matrix, and run the greedy rollout (warm-started from the prior plan
  for growth replans);
- **check** — settle the canonical-plan feasibility verdict through
  the solver-layer cache;
- **polish** — the optional budgeted second-stage ILP, then response
  assembly.

Backpressure and fairness: admission into the first stage is
non-blocking (a full queue raises a typed :class:`Overloaded`), while
inter-stage handoffs *block*, so a slow polish stage backs up through
check into rollout instead of queueing unboundedly.  Each stage drains
its queue with weighted round-robin across the request priority
classes (interactive > normal > background), so a batch drift stream
cannot starve interactive requests.

Fault sites (``NEUROPLAN_FAULTS``):

- ``solverfarm.stage.crash`` (keyed by stage name) — raises an
  :class:`InjectedFault` at stage entry; the stage worker survives,
  the request's future gets the typed error, and any held lease is
  released via the pool's discard path.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from concurrent.futures import Future

from repro import telemetry
from repro.core.neuroplan import NeuroPlan, NeuroPlanConfig
from repro.errors import DeadlineExceeded, Overloaded
from repro.planning.plan import NetworkPlan
from repro.resilience import faults
from repro.serve.registry import PolicyRegistry
from repro.solverfarm.backend import build_backend
from repro.solverfarm.cache import (
    SolverResultCache,
    feasibility_key,
    polish_key,
    rollout_key,
)
from repro.solverfarm.pool import BackendPool
from repro.solverfarm.replan import (
    BASELINE_FP,
    demand_fingerprint,
    drift_traffic,
    is_growth,
    validate_prior_plan,
)

_PRIORITY_WEIGHTS = {0: 4, 1: 2, 2: 1}
_STAGES = ("rollout", "check", "polish")


@dataclass
class FarmConfig:
    """Knobs for one :class:`SolverFarm` (kept JSON/asdict-friendly so
    the supervisor can ship it to replica processes verbatim)."""

    rollout_workers: int = 2
    check_workers: int = 1
    polish_workers: int = 1
    queue_depth: int = 16
    backends: int = 2  # pool capacity per model signature
    solver_cache_size: int = 256
    lease_wait_s: float = 30.0
    stall_timeout_s: float = 120.0


@dataclass
class FarmJob:
    """One request's mutable state as it moves through the stages."""

    request: object  # PlanRequest | ReplanRequest
    record: object
    signature: tuple
    future: Future
    admitted_at: float
    shed: "str | None" = None
    cache_key: "str | None" = None  # request-layer response cache key
    # Filled by the rollout stage:
    demand_fp: str = BASELINE_FP
    traffic: object = None  # materialized drifted TrafficMatrix | None
    warm_start: bool = False
    prior_verified: bool = False
    is_replan: bool = False
    plan_capacities: dict = field(default_factory=dict)
    plan_method: str = "rl-rollout"
    plan_metadata: dict = field(default_factory=dict)
    feasible: bool = False
    rollout_s: float = 0.0
    queue_s: float = 0.0
    lp_solves: int = 0
    rollout_cached: bool = False
    # Filled by the check stage:
    verdict_cached: bool = False
    # Filled by the polish stage:
    ilp_s: float = 0.0
    second_stage_status: "str | None" = None
    polish_cached: bool = False


class _FairQueue:
    """Bounded queue with weighted round-robin across priority classes."""

    def __init__(self, maxsize: int, name: str):
        self.maxsize = maxsize
        self.name = name
        self._lanes = {p: deque() for p in sorted(_PRIORITY_WEIGHTS)}
        self._cond = threading.Condition()
        self._size = 0
        self._closed = False
        self._cursor = 0  # index into the priority cycle
        self._credit = 0  # items left in the current lane's turn

    def put(self, item, priority: int, block: bool = True) -> None:
        priority = priority if priority in self._lanes else 1
        with self._cond:
            while self._size >= self.maxsize and not self._closed:
                if not block:
                    telemetry.counter(f"solverfarm.stage.{self.name}.rejected")
                    raise Overloaded(
                        f"solver-farm {self.name} queue is full "
                        f"({self.maxsize} deep); retry later"
                    )
                self._cond.wait(0.5)
            if self._closed:
                raise Overloaded("solver farm is draining")
            self._lanes[priority].append(item)
            self._size += 1
            telemetry.gauge(
                f"solverfarm.stage.{self.name}.queue_depth", self._size
            )
            self._cond.notify_all()

    def get(self):
        """Next item by weighted round-robin; ``None`` once drained."""
        with self._cond:
            while True:
                if self._size:
                    item = self._pick_locked()
                    self._size -= 1
                    telemetry.gauge(
                        f"solverfarm.stage.{self.name}.queue_depth", self._size
                    )
                    self._cond.notify_all()
                    return item
                if self._closed:
                    return None
                self._cond.wait(0.5)

    def _pick_locked(self):
        priorities = sorted(self._lanes)
        for _ in range(2 * len(priorities)):
            lane = self._lanes[priorities[self._cursor]]
            weight = _PRIORITY_WEIGHTS[priorities[self._cursor]]
            if lane and self._credit < weight:
                self._credit += 1
                return lane.popleft()
            self._cursor = (self._cursor + 1) % len(priorities)
            self._credit = 0
        # All lanes either empty or out of credit: take the first
        # non-empty lane in priority order (size > 0 guarantees one).
        for priority in priorities:
            if self._lanes[priority]:
                return self._lanes[priority].popleft()
        raise RuntimeError("fair queue size out of sync")  # pragma: no cover

    def depth(self) -> int:
        with self._cond:
            return self._size

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class SolverFarm:
    """Staged pipeline + backend pool + solver cache behind ``submit``."""

    def __init__(
        self,
        registry: PolicyRegistry,
        config: "FarmConfig | None" = None,
        service_config=None,
        response_cache=None,
    ):
        self.registry = registry
        self.config = config or FarmConfig()
        self.service_config = service_config
        self.response_cache = response_cache
        self.cache = SolverResultCache(self.config.solver_cache_size)
        self._signature_specs: dict[tuple, tuple] = {}
        self.pool = BackendPool(
            self._build_backend,
            capacity=self.config.backends,
            lease_wait_s=self.config.lease_wait_s,
            stall_timeout_s=self.config.stall_timeout_s,
        )
        self._queues = {
            name: _FairQueue(self.config.queue_depth, name) for name in _STAGES
        }
        # Per-stage job ordinals for the crash fault site's attempt
        # number, so ``solverfarm.stage.crash@rollout#N`` kills exactly
        # the first N jobs entering that stage.
        self._stage_attempts = {name: itertools.count() for name in _STAGES}
        self._closed = False
        self._threads: list[threading.Thread] = []
        stage_workers = {
            "rollout": self.config.rollout_workers,
            "check": self.config.check_workers,
            "polish": self.config.polish_workers,
        }
        stage_fns = {
            "rollout": self._stage_rollout,
            "check": self._stage_check,
            "polish": self._stage_polish,
        }
        for name in _STAGES:
            for index in range(max(1, stage_workers[name])):
                thread = threading.Thread(
                    target=self._worker,
                    args=(name, stage_fns[name]),
                    name=f"solverfarm-{name}-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, job: FarmJob) -> Future:
        """Admit a job into the rollout stage (non-blocking, typed)."""
        if self._closed:
            raise Overloaded("solver farm is draining")
        self._signature_specs.setdefault(
            job.signature,
            (
                job.request.model_key(),
                int(job.request.seed),
                job.record.version,
            ),
        )
        telemetry.counter("solverfarm.requests")
        self._queues["rollout"].put(
            job, priority=job.request.priority, block=False
        )
        return job.future

    # ------------------------------------------------------------------
    # Stage workers
    # ------------------------------------------------------------------
    def _worker(self, name: str, stage_fn) -> None:
        queue = self._queues[name]
        while True:
            job = queue.get()
            if job is None:
                return
            if job.future.cancelled():
                continue
            try:
                faults.maybe_fail(
                    "solverfarm.stage.crash",
                    key=name,
                    attempt=next(self._stage_attempts[name]),
                )
                self._check_deadline(job, name)
                stage_fn(job)
            except Exception as exc:
                telemetry.counter(f"solverfarm.stage.{name}.errors")
                job.future.set_exception(exc)
                continue
            next_index = _STAGES.index(name) + 1
            if next_index < len(_STAGES):
                # Blocking handoff: backpressure propagates upstream.
                self._queues[_STAGES[next_index]].put(
                    job, priority=job.request.priority, block=True
                )

    def _check_deadline(self, job: FarmJob, stage: str) -> None:
        deadline = job.request.deadline_s
        if deadline is None:
            return
        elapsed = time.perf_counter() - job.admitted_at
        if elapsed >= deadline:
            telemetry.counter("serve.deadline_exceeded")
            raise DeadlineExceeded(
                f"request spent {elapsed:.3f}s before the {stage} stage, "
                f"past its {deadline}s deadline"
            )

    # ------------------------------------------------------------------
    def _build_backend(self, signature: tuple):
        key, seed, version = self._signature_specs[signature]
        return build_backend(self.registry, key, seed, version)

    def _baseline_traffic(self, job: FarmJob):
        key, seed, version = self._signature_specs[job.signature]
        agent, _ = self.registry.agent(key, seed=seed, version=version)
        return agent.instance.traffic

    def _max_steps(self):
        return getattr(self.service_config, "rollout_max_steps", None)

    # ------------------------------------------------------------------
    def _stage_rollout(self, job: FarmJob) -> None:
        job.queue_s = time.perf_counter() - job.admitted_at
        baseline = self._baseline_traffic(job)
        request = job.request
        prior_capacities = None
        if job.is_replan:
            job.traffic = drift_traffic(baseline, request.demands)
            if job.traffic is baseline:
                job.traffic = None
            job.demand_fp = demand_fingerprint(
                baseline, job.traffic if job.traffic is not None else baseline
            )
            if request.prior_plan is not None:
                key, _, _ = self._signature_specs[job.signature]
                agent, _ = self.registry.agent(
                    key,
                    seed=int(request.seed),
                    version=job.record.version,
                )
                prior_capacities = validate_prior_plan(
                    agent.instance, request.prior_plan
                )
                prior_traffic = drift_traffic(baseline, request.prior_demands)
                target = job.traffic if job.traffic is not None else baseline
                if is_growth(target, prior_traffic):
                    job.warm_start = True
                    prior_fp = demand_fingerprint(baseline, prior_traffic)
                    prior_entry = self.cache.rollout.get(
                        rollout_key(job.signature, prior_fp, self._max_steps())
                    )
                    job.prior_verified = bool(
                        prior_entry is not None
                        and prior_entry["capacities"] == prior_capacities
                    )

        cache_entry = self.cache.rollout.get(
            rollout_key(job.signature, job.demand_fp, self._max_steps())
        )
        if cache_entry is not None:
            job.plan_capacities = dict(cache_entry["capacities"])
            job.feasible = bool(cache_entry["feasible"])
            job.plan_metadata = dict(cache_entry.get("metadata", {}))
            job.rollout_cached = True
            job.warm_start = False  # nothing was rolled out at all
            return

        start = prior_capacities if job.warm_start else None
        rollout_start = time.perf_counter()
        with self.pool.leased(job.signature) as backend:
            backend.ensure_demands(job.traffic, job.demand_fp)
            lp_before = backend.lp_solves
            with telemetry.timer("serve.rollout"):
                plan = backend.rollout(self._max_steps(), start_capacities=start)
            job.lp_solves += backend.lp_solves - lp_before
        job.rollout_s = time.perf_counter() - rollout_start
        job.plan_capacities = dict(plan.capacities)
        job.plan_method = plan.method
        job.plan_metadata = dict(plan.metadata)
        job.feasible = bool(plan.metadata.get("feasible", True))
        # The demands-keyed entry must equal the from-scratch plan:
        # cold rollouts qualify by definition, warm-started ones only
        # when the prior was verified on-path (growth dominance then
        # guarantees the trajectory is the from-scratch one).
        if not job.warm_start or job.prior_verified:
            self.cache.rollout.put(
                rollout_key(job.signature, job.demand_fp, self._max_steps()),
                {
                    "capacities": dict(plan.capacities),
                    "feasible": job.feasible,
                    "metadata": dict(plan.metadata),
                },
            )

    def _stage_check(self, job: FarmJob) -> None:
        key = feasibility_key(
            job.signature, job.demand_fp, job.plan_capacities
        )
        cached = self.cache.feasibility.get(key)
        if cached is not None:
            job.feasible = bool(cached["feasible"])
            job.verdict_cached = True
            return
        # A verdict is a property of (demands, capacities), independent
        # of how the plan was produced — always safe to record.
        self.cache.feasibility.put(key, {"feasible": job.feasible})

    def _stage_polish(self, job: FarmJob) -> None:
        request = job.request
        ilp_shed = bool(request.second_stage) and job.shed == "skip_ilp"
        if ilp_shed:
            telemetry.counter("serve.shed.skip_ilp")
        plan_capacities = job.plan_capacities
        method = job.plan_method
        degraded = bool(job.plan_metadata.get("degraded", False))
        degraded_reason = job.plan_metadata.get("degraded_reason")
        if request.second_stage and not ilp_shed:
            pkey = polish_key(
                job.signature,
                job.demand_fp,
                job.plan_capacities,
                float(request.alpha),
            )
            cached = self.cache.polish.get(pkey)
            if cached is not None:
                plan_capacities = dict(cached["capacities"])
                method = cached["method"]
                job.second_stage_status = cached["status"]
                job.polish_cached = True
            else:
                backend_instance = self._polish_instance(job)
                budget = getattr(self.service_config, "ilp_time_limit", 30.0)
                deadline = request.deadline_s
                if deadline is not None:
                    remaining = deadline - (
                        time.perf_counter() - job.admitted_at
                    )
                    if remaining <= 0:
                        telemetry.counter("serve.deadline_exceeded")
                        raise DeadlineExceeded(
                            "deadline expired after the rollout, before "
                            "the second-stage ILP could start"
                        )
                    budget = min(budget, remaining)
                planner = NeuroPlan(
                    NeuroPlanConfig(
                        relax_factor=request.alpha, ilp_time_limit=budget
                    )
                )
                first_stage = NetworkPlan(
                    instance_name=backend_instance.name,
                    capacities=dict(job.plan_capacities),
                    method=job.plan_method,
                    metadata=dict(job.plan_metadata),
                )
                with telemetry.timer("serve.second_stage"):
                    polished, status, job.ilp_s = planner.second_stage(
                        backend_instance, first_stage
                    )
                plan_capacities = dict(polished.capacities)
                method = polished.method
                job.second_stage_status = status
                degraded = degraded or bool(
                    polished.metadata.get("degraded", False)
                )
                degraded_reason = degraded_reason or polished.metadata.get(
                    "degraded_reason"
                )
                # Only proven optima enter the cross-request cache: a
                # budget-truncated fallback is request-local.
                if status == "optimal" and not degraded:
                    self.cache.polish.put(
                        pkey,
                        {
                            "capacities": dict(plan_capacities),
                            "method": method,
                            "status": status,
                        },
                    )
            job.feasible = True  # ILP plans are feasible by construction

        instance = self._polish_instance(job)
        cost = instance.cost_model.plan_cost(instance.network, plan_capacities)
        response = {
            "plan": dict(plan_capacities),
            "cost": cost,
            "feasible": job.feasible,
            "method": method,
            "degraded": degraded or ilp_shed,
            "degraded_reason": (
                "load shed: second-stage ILP skipped"
                if ilp_shed
                else degraded_reason
            ),
            "second_stage_status": job.second_stage_status,
            "shed": "skip_ilp" if ilp_shed else None,
            "lp_solves": job.lp_solves,
            "model": {
                "key": job.record.key.dirname(),
                "version": job.record.version,
            },
            "pipeline": "farm",
            "solver_cache": {
                "rollout": job.rollout_cached,
                "feasibility": job.verdict_cached,
                "polish": job.polish_cached,
            },
            "timings": {
                "queue_s": job.queue_s,
                "rollout_s": job.rollout_s,
                "ilp_s": job.ilp_s,
                "total_s": time.perf_counter() - job.admitted_at,
            },
            "cache_hit": False,
        }
        if job.is_replan:
            response["replan"] = {
                "warm_start": job.warm_start,
                "prior_verified": job.prior_verified,
            }
        trusted = not job.warm_start or job.prior_verified
        if (
            self.response_cache is not None
            and job.cache_key is not None
            and not request.no_cache
            and not ilp_shed
            and trusted
        ):
            self.response_cache.put(job.cache_key, response)
        telemetry.counter("serve.responses")
        telemetry.observe("serve.request", time.perf_counter() - job.admitted_at)
        job.future.set_result(response)

    # ------------------------------------------------------------------
    def _polish_instance(self, job: FarmJob):
        key, seed, version = self._signature_specs[job.signature]
        agent, _ = self.registry.agent(key, seed=seed, version=version)
        if job.traffic is None:
            return agent.instance
        from dataclasses import replace

        return replace(agent.instance, traffic=job.traffic)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "pool": self.pool.stats(),
            "cache": self.cache.stats(),
            "queues": {
                name: queue.depth() for name, queue in self._queues.items()
            },
            "draining": self._closed,
        }

    def close(self) -> None:
        """Drain: stop admissions, finish in-flight jobs stage by stage."""
        if self._closed:
            return
        self._closed = True
        for name in _STAGES:
            self._queues[name].close()
            for thread in self._threads:
                if thread.name.startswith(f"solverfarm-{name}-"):
                    thread.join(timeout=60.0)
        self.pool.close()


__all__ = ["FarmConfig", "FarmJob", "SolverFarm"]
