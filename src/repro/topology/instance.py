"""The planning instance: the five inputs of Fig. 3 in one object."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError, TopologyError
from repro.topology.cost import CostModel
from repro.topology.failures import FailureScenario
from repro.topology.network import Network
from repro.topology.traffic import ReliabilityPolicy, TrafficMatrix


@dataclass
class PlanningInstance:
    """Everything a planner needs: topology, demand, failures, policy, cost.

    Attributes
    ----------
    capacity_unit:
        Gbps per capacity increment (links can only be turned up in fixed
        units; Eq. 3's integrality).
    horizon:
        ``"short"`` -- capacities on existing links only (C_min floors
        from the production topology); ``"long"`` -- candidate links with
        zero starting capacity and candidate fibers with build costs.
    """

    name: str
    network: Network
    traffic: TrafficMatrix
    failures: list[FailureScenario]
    cost_model: CostModel = field(default_factory=CostModel)
    policy: ReliabilityPolicy = field(default_factory=ReliabilityPolicy)
    capacity_unit: float = 100.0
    horizon: str = "short"

    def __post_init__(self):
        if self.capacity_unit <= 0:
            raise ConfigError("capacity_unit must be positive")
        if self.horizon not in ("short", "long"):
            raise ConfigError("horizon must be 'short' or 'long'")
        seen = set()
        for failure in self.failures:
            if failure.id in seen:
                raise TopologyError(f"duplicate failure id {failure.id}")
            seen.add(failure.id)
        for flow in self.traffic:
            for endpoint in (flow.src, flow.dst):
                if endpoint not in self.network.nodes:
                    raise TopologyError(f"flow endpoint {endpoint} not in network")

    @property
    def failure_ids(self) -> list[str]:
        return [f.id for f in self.failures]

    def describe(self) -> str:
        """One-line size summary (paper-style scale description)."""
        return (
            f"{self.name}: {self.network.num_nodes} nodes, "
            f"{self.network.num_links} IP links, "
            f"{self.network.num_fibers} fibers, "
            f"{len(self.failures)} failures, {len(self.traffic)} flows, "
            f"{self.traffic.total_demand:.0f} Gbps demand ({self.horizon}-term)"
        )

    def scaled_initial_capacity(self, fraction: float) -> "PlanningInstance":
        """Scale every link's starting capacity (the paper's A-0 .. A-1).

        ``fraction=0`` plans from scratch; ``fraction=1`` keeps the
        original capacities.  ``min_capacity`` floors scale with the
        capacities so short-term constraints stay consistent.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError("fraction must be in [0, 1]")
        network = self.network.copy()
        for link_id, link in list(network.links.items()):
            scaled = _round_to_unit(link.capacity * fraction, self.capacity_unit)
            network.links[link_id] = replace(
                link,
                capacity=scaled,
                min_capacity=min(link.min_capacity, scaled),
            )
        return replace(
            self,
            name=f"{self.name}-{fraction:g}",
            network=network,
        )

    def with_network(self, network: Network) -> "PlanningInstance":
        return replace(self, network=network)


def _round_to_unit(value: float, unit: float) -> float:
    return round(value / unit) * unit
