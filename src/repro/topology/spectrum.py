"""Vectorized spectrum accounting over a fixed topology.

:class:`SpectrumIndex` compiles the Eq. 4 bookkeeping of a
:class:`~repro.topology.network.Network` into numpy form once: a
fiber x link CSR usage matrix (entry = the link's spectral efficiency
where the link rides the fiber) plus per-link fiber-path segments.
Per-step queries -- every link's capacity headroom for the action mask,
or whole-plan spectrum feasibility -- then reduce to one sparse matvec
and a segmented minimum instead of nested Python loops over fibers and
links.

The arithmetic mirrors the scalar reference implementation on
:class:`Network` exactly (same products, same summation order: CSR rows
accumulate in canonical link order, which is the order
``links_over_fiber`` iterates), so results are bitwise identical.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.errors import TopologyError
from repro.topology.network import Network


class SpectrumIndex:
    """Precomputed spectrum-constraint arrays for one network."""

    def __init__(self, network: Network):
        self.link_ids = network.link_ids()
        links = [network.links[link_id] for link_id in self.link_ids]
        fiber_ids = list(network.fibers)
        fiber_pos = {fiber_id: i for i, fiber_id in enumerate(fiber_ids)}

        self._spectral_efficiency = np.array(
            [link.spectral_efficiency for link in links], dtype=np.float64
        )
        self._max_spectrum = np.array(
            [network.fibers[fiber_id].max_spectrum for fiber_id in fiber_ids],
            dtype=np.float64,
        )

        # Usage matrix U (fibers x links): U[f, l] = phi_lf * se_l, so
        # spectrum_used = U @ capacities.
        rows, cols, data = [], [], []
        for col, link in enumerate(links):
            for fiber_id in dict.fromkeys(link.fiber_path):
                rows.append(fiber_pos[fiber_id])
                cols.append(col)
                data.append(link.spectral_efficiency)
        self._usage = sp.csr_matrix(
            (data, (rows, cols)),
            shape=(len(fiber_ids), len(self.link_ids)),
        )

        # Per-link fiber-path segments for the segmented min.
        segments: list[int] = []
        offsets: list[int] = []
        for link in links:
            if not link.fiber_path:
                raise TopologyError(
                    f"link {link.id} has an empty fiber path; spectrum "
                    "headroom is undefined"
                )
            offsets.append(len(segments))
            segments.extend(fiber_pos[f] for f in link.fiber_path)
        self._path_fibers = np.array(segments, dtype=np.int64)
        self._path_offsets = np.array(offsets, dtype=np.int64)

    # ------------------------------------------------------------------
    def capacity_vector(self, capacities: Mapping[str, float]) -> np.ndarray:
        """Capacities in canonical link order."""
        return np.fromiter(
            (capacities[link_id] for link_id in self.link_ids),
            dtype=np.float64,
            count=len(self.link_ids),
        )

    def fiber_headroom(self, capacities: Mapping[str, float]) -> np.ndarray:
        """Remaining spectrum per fiber (may be negative if violated)."""
        return self._max_spectrum - self._usage @ self.capacity_vector(capacities)

    def link_headroom(self, capacities: Mapping[str, float]) -> np.ndarray:
        """Per-link max additional Gbps (the action-mask input).

        Equals ``Network.link_capacity_headroom`` for every link:
        minimum headroom along the fiber path, clamped at zero,
        converted to Gbps by the link's spectral efficiency.
        """
        headroom = self.fiber_headroom(capacities)
        binding = np.minimum.reduceat(
            headroom[self._path_fibers], self._path_offsets
        )
        return np.maximum(binding, 0.0) / self._spectral_efficiency

    def feasible(
        self, capacities: Mapping[str, float], tol: float = 1e-9
    ) -> bool:
        """Whether every fiber satisfies Eq. 4 (``spectrum_feasible``)."""
        return bool(np.all(self.fiber_headroom(capacities) >= -tol))
