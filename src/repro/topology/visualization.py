"""Plan visualization: render a topology + capacity assignment to SVG.

Planning reviews are visual: operators look at maps.  This module
renders the two-layer topology as a standalone SVG (no plotting
dependencies): sites are positioned by their coordinates, IP links are
drawn with width proportional to capacity, capacity *additions* over a
baseline are highlighted, and parallel links are offset so both are
visible.  The output opens in any browser.
"""

from __future__ import annotations

import html
import math
import os

from repro.errors import TopologyError
from repro.topology.network import Network

_WIDTH = 900.0
_HEIGHT = 620.0
_MARGIN = 60.0
_PALETTE = {
    "background": "#ffffff",
    "node": "#1f2a44",
    "node_label": "#1f2a44",
    "link": "#8a93a6",
    "added": "#c2410c",
    "candidate": "#94a3b8",
}


def _positions(network: Network) -> dict[str, tuple[float, float]]:
    """Scale node coordinates into the SVG viewport."""
    xs = [n.longitude for n in network.nodes.values()]
    ys = [n.latitude for n in network.nodes.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    def place(node):
        x = _MARGIN + (node.longitude - min_x) / span_x * (_WIDTH - 2 * _MARGIN)
        # SVG y grows downward; latitude grows upward.
        y = _HEIGHT - _MARGIN - (node.latitude - min_y) / span_y * (
            _HEIGHT - 2 * _MARGIN
        )
        return (x, y)

    return {name: place(node) for name, node in network.nodes.items()}


def _offset_point(ax, ay, bx, by, offset):
    """Shift a segment perpendicular to itself (parallel-link fan-out)."""
    dx, dy = bx - ax, by - ay
    norm = math.hypot(dx, dy) or 1.0
    px, py = -dy / norm, dx / norm
    return (ax + px * offset, ay + py * offset, bx + px * offset, by + py * offset)


def render_svg(
    network: Network,
    capacities: "dict[str, float] | None" = None,
    baseline: "dict[str, float] | None" = None,
    title: str = "",
) -> str:
    """Render the network to an SVG string.

    ``capacities`` defaults to the network's current state; ``baseline``
    (when given) highlights links whose capacity grew over it.
    """
    if network.num_nodes == 0:
        raise TopologyError("cannot render an empty network")
    capacities = capacities if capacities is not None else network.capacities()
    positions = _positions(network)
    max_capacity = max(max(capacities.values(), default=0.0), 1.0)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH:.0f}" '
        f'height="{_HEIGHT:.0f}" viewBox="0 0 {_WIDTH:.0f} {_HEIGHT:.0f}">',
        f'<rect width="100%" height="100%" fill="{_PALETTE["background"]}"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2:.0f}" y="28" text-anchor="middle" '
            f'font-family="sans-serif" font-size="18" '
            f'fill="{_PALETTE["node"]}">{html.escape(title)}</text>'
        )

    # Links, parallel groups fanned out.
    for endpoints, group in sorted(
        network.parallel_groups().items(), key=lambda kv: sorted(kv[0])
    ):
        a, b = sorted(endpoints)
        ax, ay = positions[a]
        bx, by = positions[b]
        fan = len(group)
        for index, link in enumerate(sorted(group, key=lambda l: l.id)):
            offset = (index - (fan - 1) / 2.0) * 6.0
            x1, y1, x2, y2 = _offset_point(ax, ay, bx, by, offset)
            capacity = capacities.get(link.id, link.capacity)
            width = 1.0 + 6.0 * (capacity / max_capacity)
            added = (
                baseline is not None
                and capacity > baseline.get(link.id, 0.0) + 1e-9
            )
            if capacity <= 0:
                color = _PALETTE["candidate"]
                dash = ' stroke-dasharray="5,4"'
                width = 1.0
            else:
                color = _PALETTE["added"] if added else _PALETTE["link"]
                dash = ""
            label = html.escape(
                f"{link.id}: {capacity:,.0f} Gbps over {len(link.fiber_path)} fiber(s)"
            )
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
                f'stroke="{color}" stroke-width="{width:.1f}"{dash}>'
                f"<title>{label}</title></line>"
            )

    # Nodes on top.
    for name, (x, y) in sorted(positions.items()):
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="7" fill="{_PALETTE["node"]}">'
            f"<title>{html.escape(name)}</title></circle>"
        )
        parts.append(
            f'<text x="{x + 9:.1f}" y="{y - 7:.1f}" font-family="sans-serif" '
            f'font-size="11" fill="{_PALETTE["node_label"]}">'
            f"{html.escape(name)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    network: Network,
    path: "str | os.PathLike",
    capacities: "dict[str, float] | None" = None,
    baseline: "dict[str, float] | None" = None,
    title: str = "",
) -> None:
    """Render and write the SVG to ``path``."""
    with open(path, "w") as handle:
        handle.write(
            render_svg(network, capacities=capacities, baseline=baseline, title=title)
        )
