"""Embedded reference topologies.

Production topologies A-E are confidential; these public/synthetic
datasets stand in for them:

- :func:`figure1_topology` -- the paper's own 6-site worked example
  (Fig. 1), including the long-term candidate fiber B-F and candidate IP
  links 3 and 4.  Used by tests and the walkthrough example.
- :func:`abilene` -- the 11-node Abilene research backbone (public
  dataset), a realistic small WAN.
- :func:`uscarrier26` -- a 26-node continental-US carrier backbone laid
  out from public carrier maps.
"""

from __future__ import annotations

from repro.topology.cost import CostModel
from repro.topology.elements import Fiber, IPLink, Node
from repro.topology.failures import FailureScenario, all_single_fiber_failures
from repro.topology.instance import PlanningInstance
from repro.topology.network import Network
from repro.topology.traffic import Flow, TrafficMatrix, gravity_traffic


def figure1_topology(long_term: bool = False) -> PlanningInstance:
    """The Fig. 1 example: 100 Gbps A->D surviving three single-fiber cuts.

    Short-term (``long_term=False``): only IP links 1 (A-B-C-D) and
    2 (A-E-F-D) exist; the failures are fiber cuts on A-E and B-C.

    Long-term (``long_term=True``): candidate fiber B-F can be built,
    adding candidate IP links 3 (A-B-F-D) and 4 (A-E-F-B-C-D), plus the
    B-F fiber-cut failure.  The paper shows plan (1, 3) is cheapest
    because links 1 and 3 share fiber A-B (5 fibers total).
    """
    nodes = [Node(n) for n in "ABCDEF"]
    # The paper approximates cost as "the number of fibers used", so
    # every fiber is a unit-cost candidate to light and the capacity
    # price is a tiny tie-breaker.
    fibers = [
        Fiber("AB", "A", "B", length_km=1.0, in_service=False, cost=1.0),
        Fiber("BC", "B", "C", length_km=1.0, in_service=False, cost=1.0),
        Fiber("CD", "C", "D", length_km=1.0, in_service=False, cost=1.0),
        Fiber("AE", "A", "E", length_km=1.0, in_service=False, cost=1.0),
        Fiber("EF", "E", "F", length_km=1.0, in_service=False, cost=1.0),
        Fiber("FD", "F", "D", length_km=1.0, in_service=False, cost=1.0),
    ]
    links = [
        IPLink("link1", "A", "D", ("AB", "BC", "CD"), capacity=0.0),
        IPLink("link2", "A", "D", ("AE", "EF", "FD"), capacity=0.0),
    ]
    if long_term:
        fibers.append(Fiber("BF", "B", "F", length_km=1.0, in_service=False, cost=1.0))
        links.append(IPLink("link3", "A", "D", ("AB", "BF", "FD"), capacity=0.0))
        links.append(
            IPLink("link4", "A", "D", ("AE", "EF", "BF", "BC", "CD"), capacity=0.0)
        )
    network = Network(nodes, fibers, links)
    failures = [
        FailureScenario("fiber:AE", fibers=frozenset({"AE"})),
        FailureScenario("fiber:BC", fibers=frozenset({"BC"})),
    ]
    if long_term:
        failures.append(FailureScenario("fiber:BF", fibers=frozenset({"BF"})))
    traffic = TrafficMatrix([Flow("A", "D", 100.0)])
    cost_model = CostModel(cost_per_gbps_km=1e-4, fiber_fixed_charge=True)
    return PlanningInstance(
        name="figure1-long" if long_term else "figure1-short",
        network=network,
        traffic=traffic,
        failures=failures,
        cost_model=cost_model,
        capacity_unit=100.0,
        horizon="long" if long_term else "short",
    )


_ABILENE_NODES = [
    ("Seattle", 47.6, -122.3),
    ("Sunnyvale", 37.4, -122.0),
    ("LosAngeles", 34.1, -118.2),
    ("Denver", 39.7, -105.0),
    ("KansasCity", 39.1, -94.6),
    ("Houston", 29.8, -95.4),
    ("Chicago", 41.9, -87.6),
    ("Indianapolis", 39.8, -86.2),
    ("Atlanta", 33.7, -84.4),
    ("WashingtonDC", 38.9, -77.0),
    ("NewYork", 40.7, -74.0),
]

_ABILENE_EDGES = [
    ("Seattle", "Sunnyvale", 1100.0),
    ("Seattle", "Denver", 2100.0),
    ("Sunnyvale", "LosAngeles", 600.0),
    ("Sunnyvale", "Denver", 1500.0),
    ("LosAngeles", "Houston", 2500.0),
    ("Denver", "KansasCity", 900.0),
    ("Houston", "KansasCity", 1200.0),
    ("Houston", "Atlanta", 1300.0),
    ("KansasCity", "Indianapolis", 700.0),
    ("Chicago", "Indianapolis", 300.0),
    ("Indianapolis", "Atlanta", 800.0),
    ("Chicago", "NewYork", 1300.0),
    ("Atlanta", "WashingtonDC", 1000.0),
    ("WashingtonDC", "NewYork", 400.0),
]


def abilene(
    total_demand: float = 2000.0,
    seed: int = 0,
    capacity_unit: float = 100.0,
) -> PlanningInstance:
    """The Abilene backbone with gravity traffic and fiber-cut failures."""
    nodes = [Node(n, latitude=lat, longitude=lon) for n, lat, lon in _ABILENE_NODES]
    fibers = [
        Fiber(f"{a}--{b}", a, b, length_km=km) for a, b, km in _ABILENE_EDGES
    ]
    links = [
        IPLink(f"ip:{a}--{b}", a, b, (f"{a}--{b}",), capacity=0.0)
        for a, b, _ in _ABILENE_EDGES
    ]
    network = Network(nodes, fibers, links)
    traffic = gravity_traffic(
        [n.name for n in nodes], total_demand, rng=seed, sparsity=0.5
    )
    return PlanningInstance(
        name="abilene",
        network=network,
        traffic=traffic,
        failures=all_single_fiber_failures(network),
        cost_model=CostModel(cost_per_gbps_km=1.0, fiber_fixed_charge=False),
        capacity_unit=capacity_unit,
        horizon="short",
    )


_USCARRIER_NODES = [
    ("Seattle", 47.6, -122.3), ("Portland", 45.5, -122.7),
    ("Sacramento", 38.6, -121.5), ("SanFrancisco", 37.8, -122.4),
    ("LosAngeles", 34.1, -118.2), ("SanDiego", 32.7, -117.2),
    ("Phoenix", 33.4, -112.1), ("LasVegas", 36.2, -115.1),
    ("SaltLake", 40.8, -111.9), ("Denver", 39.7, -105.0),
    ("Albuquerque", 35.1, -106.6), ("ElPaso", 31.8, -106.4),
    ("Dallas", 32.8, -96.8), ("Houston", 29.8, -95.4),
    ("NewOrleans", 30.0, -90.1), ("KansasCity", 39.1, -94.6),
    ("Minneapolis", 45.0, -93.3), ("Chicago", 41.9, -87.6),
    ("StLouis", 38.6, -90.2), ("Nashville", 36.2, -86.8),
    ("Atlanta", 33.7, -84.4), ("Miami", 25.8, -80.2),
    ("Charlotte", 35.2, -80.8), ("WashingtonDC", 38.9, -77.0),
    ("NewYork", 40.7, -74.0), ("Boston", 42.4, -71.1),
]

_USCARRIER_EDGES = [
    ("Seattle", "Portland", 280), ("Portland", "Sacramento", 830),
    ("Sacramento", "SanFrancisco", 140), ("SanFrancisco", "LosAngeles", 610),
    ("LosAngeles", "SanDiego", 190), ("SanDiego", "Phoenix", 570),
    ("LosAngeles", "LasVegas", 430), ("LasVegas", "SaltLake", 680),
    ("Seattle", "SaltLake", 1130), ("SaltLake", "Denver", 600),
    ("Phoenix", "Albuquerque", 670), ("Albuquerque", "ElPaso", 430),
    ("ElPaso", "Dallas", 990), ("Albuquerque", "Denver", 720),
    ("Denver", "KansasCity", 900), ("Dallas", "Houston", 390),
    ("Houston", "NewOrleans", 560), ("Dallas", "KansasCity", 730),
    ("KansasCity", "StLouis", 400), ("KansasCity", "Minneapolis", 660),
    ("Minneapolis", "Chicago", 660), ("Chicago", "StLouis", 480),
    ("StLouis", "Nashville", 500), ("NewOrleans", "Atlanta", 760),
    ("Nashville", "Atlanta", 400), ("Atlanta", "Miami", 970),
    ("Atlanta", "Charlotte", 390), ("Charlotte", "WashingtonDC", 640),
    ("WashingtonDC", "NewYork", 400), ("NewYork", "Boston", 350),
    ("Chicago", "NewYork", 1300), ("Chicago", "Boston", 1600),
    ("Miami", "Charlotte", 1050),
    ("Sacramento", "SaltLake", 870), ("Phoenix", "ElPaso", 700),
]


def uscarrier26(
    total_demand: float = 8000.0,
    seed: int = 0,
    capacity_unit: float = 100.0,
) -> PlanningInstance:
    """A 26-node continental-US carrier backbone."""
    nodes = [Node(n, latitude=lat, longitude=lon) for n, lat, lon in _USCARRIER_NODES]
    fibers = [
        Fiber(f"{a}--{b}", a, b, length_km=float(km))
        for a, b, km in _USCARRIER_EDGES
    ]
    links = [
        IPLink(f"ip:{a}--{b}", a, b, (f"{a}--{b}",), capacity=0.0)
        for a, b, _ in _USCARRIER_EDGES
    ]
    network = Network(nodes, fibers, links)
    traffic = gravity_traffic(
        [n.name for n in nodes], total_demand, rng=seed, sparsity=0.7
    )
    return PlanningInstance(
        name="uscarrier26",
        network=network,
        traffic=traffic,
        failures=all_single_fiber_failures(network),
        cost_model=CostModel(cost_per_gbps_km=1.0, fiber_fixed_charge=False),
        capacity_unit=capacity_unit,
        horizon="short",
    )
