"""The network cost model (Eq. 1).

Eq. 1 charges each IP link for (a) its capacity, at ``cost_IP`` per Gbps
per km of underlying fiber, and (b) the fibers underneath it.  Two fiber
accounting modes are provided:

- ``fiber_fixed_charge=True`` (faithful to Eq. 1's one-time procurement
  term): a fiber's build cost ``cost_f`` is paid once if *any* IP
  capacity crosses a not-yet-in-service fiber.  The ILP models this with
  binary light-up variables; the RL reward charges it on the step that
  first lights the fiber.
- ``fiber_fixed_charge=False``: fibers are already paid for (typical
  short-term planning), so only the capacity term remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigError
from repro.topology.network import Network


@dataclass(frozen=True)
class CostModel:
    """Prices for IP capacity and fiber builds."""

    cost_per_gbps_km: float = 1.0
    fiber_fixed_charge: bool = True

    def __post_init__(self):
        if self.cost_per_gbps_km < 0:
            raise ConfigError("cost_per_gbps_km must be >= 0")

    # ------------------------------------------------------------------
    def link_unit_cost(self, network: Network, link_id: str) -> float:
        """Cost of one Gbps of capacity on ``link_id`` (the C_l term)."""
        return self.cost_per_gbps_km * network.link_length_km(link_id)

    def _unit_costs(self, network: Network) -> dict[str, float]:
        """Per-link unit costs, memoized on the network's length cache.

        The cached floats are exactly the ``link_unit_cost`` products,
        so sums over them are bitwise identical to the uncached path.
        """
        cache = getattr(network, "_unit_cost_cache", None)
        if cache is None or cache[0] != self.cost_per_gbps_km:
            costs = {
                link_id: self.cost_per_gbps_km * network.link_length_km(link_id)
                for link_id in network.links
            }
            cache = (self.cost_per_gbps_km, costs)
            network._unit_cost_cache = cache
        return cache[1]

    def lit_fibers(
        self, network: Network, capacities: Mapping[str, float]
    ) -> set[str]:
        """Fibers carrying any IP capacity under ``capacities``."""
        lit: set[str] = set()
        for link_id, capacity in capacities.items():
            if capacity > 0:
                lit.update(network.get_link(link_id).fiber_path)
        return lit

    def fiber_build_cost(
        self, network: Network, capacities: Mapping[str, float]
    ) -> float:
        """One-time cost of lighting fibers that are not yet in service."""
        if not self.fiber_fixed_charge:
            return 0.0
        return sum(
            network.fibers[f].cost
            for f in self.lit_fibers(network, capacities)
            if not network.fibers[f].in_service
        )

    def capacity_cost(
        self, network: Network, capacities: Mapping[str, float]
    ) -> float:
        """The Sum_l C_l * cost_IP * length_l term."""
        unit_costs = self._unit_costs(network)
        return sum(
            capacity * unit_costs[link_id]
            for link_id, capacity in capacities.items()
        )

    def plan_cost(
        self, network: Network, capacities: Mapping[str, float] | None = None
    ) -> float:
        """Total network cost of a capacity assignment (Eq. 1)."""
        if capacities is None:
            capacities = network.capacities()
        return self.capacity_cost(network, capacities) + self.fiber_build_cost(
            network, capacities
        )

    def incremental_cost(
        self,
        network: Network,
        before: Mapping[str, float],
        after: Mapping[str, float],
    ) -> float:
        """Cost added by moving from capacities ``before`` to ``after``.

        Used for the RL dense reward: the step reward is the negated,
        scaled incremental cost.
        """
        return self.plan_cost(network, after) - self.plan_cost(network, before)
