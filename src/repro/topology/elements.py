"""Primitive topology elements: sites, fibers, IP links.

Terminology follows Table 1 of the paper:

- a :class:`Node` is an IP/optical site (datacenter or PoP);
- a :class:`Fiber` is an optical fiber pair between two sites with a
  maximum usable spectrum ``S_f`` and a one-time build cost ``cost_f``;
- an :class:`IPLink` is a layer-3 adjacency riding a *path of fibers*
  (``Psi_l``), with a capacity ``C_l`` in Gbps, a floor ``C_l^min``, and
  a spectral efficiency ``phi_lf`` (GHz of spectrum consumed per Gbps).

Multiple IP links may connect the same node pair over different fiber
paths (parallel links); they are distinct objects with distinct ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TopologyError


@dataclass(frozen=True)
class Node:
    """An IP/optical site."""

    name: str
    region: str = "default"
    latitude: float = 0.0
    longitude: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise TopologyError("node name must be non-empty")


@dataclass(frozen=True)
class Fiber:
    """An optical fiber pair between two sites.

    Attributes
    ----------
    max_spectrum:
        ``S_f`` -- usable spectrum in GHz.
    cost:
        ``cost_f`` -- one-time procurement + light-up cost (arbitrary
        money units).
    in_service:
        Existing fiber (True) vs a *candidate* fiber that long-term
        planning may decide to build (False).
    """

    id: str
    endpoint_a: str
    endpoint_b: str
    length_km: float
    max_spectrum: float = 4800.0
    cost: float = 0.0
    in_service: bool = True

    def __post_init__(self):
        if self.endpoint_a == self.endpoint_b:
            raise TopologyError(f"fiber {self.id}: endpoints must differ")
        if self.length_km <= 0:
            raise TopologyError(f"fiber {self.id}: length must be positive")
        if self.max_spectrum <= 0:
            raise TopologyError(f"fiber {self.id}: max_spectrum must be positive")

    @property
    def endpoints(self) -> frozenset[str]:
        return frozenset((self.endpoint_a, self.endpoint_b))

    def touches(self, node_name: str) -> bool:
        return node_name in (self.endpoint_a, self.endpoint_b)


@dataclass(frozen=True)
class IPLink:
    """A layer-3 link riding a fiber path.

    Attributes
    ----------
    capacity:
        ``C_l`` -- current capacity in Gbps, per direction.
    min_capacity:
        ``C_l^min`` -- short-term planning floor (0 for long-term
        candidates).
    fiber_path:
        ``Psi_l`` -- ordered fiber ids from ``src`` to ``dst``.
    spectral_efficiency:
        ``phi_lf`` -- GHz of fiber spectrum consumed per Gbps of IP
        capacity (identical across the path's fibers, which matches how
        the formulation uses a single modulation per link).
    """

    id: str
    src: str
    dst: str
    fiber_path: tuple[str, ...]
    capacity: float = 0.0
    min_capacity: float = 0.0
    spectral_efficiency: float = 0.4
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self):
        if self.src == self.dst:
            raise TopologyError(f"ip link {self.id}: endpoints must differ")
        if not self.fiber_path:
            raise TopologyError(f"ip link {self.id}: fiber path must be non-empty")
        if self.capacity < 0 or self.min_capacity < 0:
            raise TopologyError(f"ip link {self.id}: capacities must be >= 0")
        if self.spectral_efficiency <= 0:
            raise TopologyError(
                f"ip link {self.id}: spectral efficiency must be positive"
            )

    @property
    def endpoints(self) -> frozenset[str]:
        return frozenset((self.src, self.dst))

    def with_capacity(self, capacity: float) -> "IPLink":
        """Return a copy with a different current capacity."""
        if capacity < 0:
            raise TopologyError(f"ip link {self.id}: capacity must be >= 0")
        return replace(self, capacity=capacity)

    def is_parallel_to(self, other: "IPLink") -> bool:
        """True when both links join the same (unordered) node pair."""
        return self.id != other.id and self.endpoints == other.endpoints

    def shares_endpoint_with(self, other: "IPLink") -> bool:
        return bool(self.endpoints & other.endpoints)
