"""Synthetic WAN generator and the A-E topology family.

The paper evaluates on five production topologies (A-E) of which only
size bands are published: A has tens of IP links / failures / flows and
needs a few Tbps; E has hundreds of IP links / failures, ~1000 flows and
needs a few hundred Tbps.  :data:`TOPOLOGY_SPECS` encodes one spec per
band and :func:`make_instance` deterministically expands a spec into a
full :class:`PlanningInstance`:

1. sites are placed in a continental-scale plane;
2. the fiber graph is a Euclidean minimum spanning tree plus
   distance-biased (Waxman) shortcut fibers, so it is connected with
   realistic redundancy;
3. each fiber carries a direct IP link; *express* IP links ride
   multi-hop fiber paths between distant site pairs; a fraction of busy
   adjacencies get *parallel* IP links over alternate fiber paths;
4. gravity-model traffic with per-spec sparsity sets the flow count;
5. initial ("production") capacities come from shortest-path routing of
   the no-failure demand at a target fill, rounded to the capacity unit;
6. failures are all single-fiber cuts plus site failures at the
   highest-degree sites;
7. long-horizon variants add candidate fibers (with build costs) and
   candidate IP links starting at zero capacity.

Use ``scale`` to shrink a band proportionally for fast CI/benchmarks
while preserving its structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ConfigError
from repro.seeding import as_generator
from repro.topology.cost import CostModel
from repro.topology.elements import Fiber, IPLink, Node
from repro.topology.failures import (
    FailureScenario,
    all_single_fiber_failures,
)
from repro.topology.instance import PlanningInstance
from repro.topology.network import Network
from repro.topology.traffic import Flow, TrafficMatrix, gravity_traffic


@dataclass(frozen=True)
class TopologySpec:
    """Size knobs for one topology band."""

    num_nodes: int
    extra_fiber_factor: float  # shortcut fibers as a fraction of nodes
    express_links: int  # multi-hop IP links
    parallel_fraction: float  # fraction of direct links duplicated
    demand_gbps: float
    flow_sparsity: float  # fraction of node pairs with no flow
    site_failures: int
    candidate_fibers: int  # long-horizon candidates
    initial_fill: float  # production capacity = fill * no-failure load


TOPOLOGY_SPECS: dict[str, TopologySpec] = {
    # A: tens of links/failures/flows, a few Tbps.
    "A": TopologySpec(
        num_nodes=10, extra_fiber_factor=0.5, express_links=4,
        parallel_fraction=0.2, demand_gbps=4_000.0, flow_sparsity=0.55,
        site_failures=2, candidate_fibers=3, initial_fill=0.6,
    ),
    "B": TopologySpec(
        num_nodes=18, extra_fiber_factor=0.6, express_links=8,
        parallel_fraction=0.2, demand_gbps=15_000.0, flow_sparsity=0.55,
        site_failures=4, candidate_fibers=6, initial_fill=0.6,
    ),
    "C": TopologySpec(
        num_nodes=30, extra_fiber_factor=0.6, express_links=14,
        parallel_fraction=0.25, demand_gbps=40_000.0, flow_sparsity=0.6,
        site_failures=6, candidate_fibers=10, initial_fill=0.6,
    ),
    "D": TopologySpec(
        num_nodes=46, extra_fiber_factor=0.7, express_links=22,
        parallel_fraction=0.25, demand_gbps=100_000.0, flow_sparsity=0.65,
        site_failures=8, candidate_fibers=16, initial_fill=0.6,
    ),
    # E: hundreds of links, hundreds of failures, ~1000 flows.
    "E": TopologySpec(
        num_nodes=64, extra_fiber_factor=0.8, express_links=32,
        parallel_fraction=0.3, demand_gbps=250_000.0, flow_sparsity=0.75,
        site_failures=12, candidate_fibers=24, initial_fill=0.6,
    ),
}

_PLANE_KM = 4000.0  # continental scale
_DEFAULT_SPECTRUM = 4800.0  # GHz per fiber
_SPECTRAL_EFFICIENCY = 0.4  # GHz per Gbps


def list_topologies() -> list[str]:
    """Names of the built-in topology bands."""
    return list(TOPOLOGY_SPECS)


def make_instance(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    horizon: str = "short",
    capacity_unit: float = 100.0,
) -> PlanningInstance:
    """Build topology band ``name`` (A-E) deterministically from ``seed``.

    ``scale`` in (0, 1] shrinks node count, demand, express/parallel
    links and failures proportionally -- used by benchmarks to keep
    figure regeneration fast while preserving problem geometry.
    """
    if name not in TOPOLOGY_SPECS:
        raise ConfigError(
            f"unknown topology {name!r}; options: {list_topologies()}"
        )
    if not 0.0 < scale <= 1.0:
        raise ConfigError("scale must be in (0, 1]")
    spec = TOPOLOGY_SPECS[name]
    num_nodes = max(6, int(round(spec.num_nodes * scale)))
    rng = as_generator(seed + sum(ord(c) for c in name) * 7919)

    positions = rng.random((num_nodes, 2)) * _PLANE_KM
    node_names = [f"{name}{i:02d}" for i in range(num_nodes)]
    nodes = [
        Node(node_names[i], latitude=positions[i, 1], longitude=positions[i, 0])
        for i in range(num_nodes)
    ]

    fiber_graph = _build_fiber_graph(node_names, positions, spec, rng)
    fibers = [
        Fiber(
            id=f"f:{a}--{b}",
            endpoint_a=a,
            endpoint_b=b,
            length_km=fiber_graph.edges[a, b]["length"],
            max_spectrum=_DEFAULT_SPECTRUM,
            cost=0.0,
            in_service=True,
        )
        for a, b in sorted(fiber_graph.edges)
    ]
    fiber_id = {frozenset((f.endpoint_a, f.endpoint_b)): f.id for f in fibers}

    links = _build_ip_links(fiber_graph, fiber_id, spec, scale, rng)

    candidate_fibers: list[Fiber] = []
    if horizon == "long":
        candidate_fibers, candidate_links = _build_candidates(
            node_names, positions, fiber_graph, fiber_id, spec, scale, rng
        )
        fibers.extend(candidate_fibers)
        links.extend(candidate_links)

    network = Network(nodes, fibers, links)

    traffic = gravity_traffic(
        node_names,
        spec.demand_gbps * scale,
        rng=rng,
        sparsity=spec.flow_sparsity,
    )

    _assign_initial_capacities(
        network, traffic, spec.initial_fill, capacity_unit
    )
    _provision_spectrum(network)

    failures = all_single_fiber_failures(network)
    failures.extend(_site_failures(network, spec, scale))

    fixed_charge = horizon == "long"
    return PlanningInstance(
        name=name,
        network=network,
        traffic=traffic,
        failures=failures,
        cost_model=CostModel(cost_per_gbps_km=1.0, fiber_fixed_charge=fixed_charge),
        capacity_unit=capacity_unit,
        horizon=horizon,
    )


def make_fat_tree_dci(
    num_dcs: int = 3,
    leaves_per_dc: int = 2,
    seed: int = 0,
    demand_gbps: float = 6_000.0,
    intra_dc_fraction: float = 0.25,
    capacity_unit: float = 100.0,
    express_chords: int = 1,
    name: str = "dci",
) -> PlanningInstance:
    """Cross-datacenter fat-tree/DCI topology (deterministic per seed).

    Each datacenter is a two-tier fat-tree slice -- ``leaves_per_dc``
    leaf pods dual-homed onto a pair of gateway spines -- and the
    gateways of consecutive datacenters are chained into two disjoint
    long-haul DCI rings (one per gateway plane), plus ``express_chords``
    shortcut fibers between distant datacenters.  The fiber graph
    therefore survives any single fiber cut, and any single *gateway*
    site failure leaves every surviving node connected through the other
    plane -- the invariants :func:`validate_instance` and the greedy
    planner rely on.

    Traffic is gravity-model east-west replication between leaf pods of
    different datacenters, plus an ``intra_dc_fraction`` share of
    intra-datacenter demand.  Failures are all single fiber cuts plus
    one gateway site failure per datacenter.
    """
    if num_dcs < 3:
        raise ConfigError("need at least 3 datacenters for a DCI ring")
    if leaves_per_dc < 1:
        raise ConfigError("need at least one leaf pod per datacenter")
    rng = as_generator(seed + 104729)

    # Datacenters on a metro-scale circle; leaves/gateways jittered
    # around their DC's center so rendered topologies stay readable.
    centers = np.stack(
        [
            _PLANE_KM / 2 + _PLANE_KM / 3 * np.cos(
                2 * np.pi * np.arange(num_dcs) / num_dcs
            ),
            _PLANE_KM / 2 + _PLANE_KM / 3 * np.sin(
                2 * np.pi * np.arange(num_dcs) / num_dcs
            ),
        ],
        axis=1,
    )
    nodes: list[Node] = []
    gateways: list[tuple[str, str]] = []
    leaves: list[list[str]] = []
    for d in range(num_dcs):
        pair = (f"dc{d}-gw0", f"dc{d}-gw1")
        gateways.append(pair)
        pod_names = [f"dc{d}-leaf{j}" for j in range(leaves_per_dc)]
        leaves.append(pod_names)
        for local, node_name in enumerate((*pair, *pod_names)):
            jitter = rng.normal(scale=8.0, size=2)
            nodes.append(
                Node(
                    node_name,
                    region=f"dc{d}",
                    longitude=float(centers[d, 0] + 40.0 * local + jitter[0]),
                    latitude=float(centers[d, 1] + jitter[1]),
                )
            )

    def _fiber(a: str, b: str, length: float, fid: "str | None" = None) -> Fiber:
        return Fiber(
            id=fid or f"f:{a}--{b}",
            endpoint_a=a,
            endpoint_b=b,
            length_km=length,
            max_spectrum=_DEFAULT_SPECTRUM,
            cost=0.0,
            in_service=True,
        )

    fibers: list[Fiber] = []
    # Intra-DC: every leaf dual-homed to both gateways + a gateway pair
    # interconnect (short fabric runs).
    for d in range(num_dcs):
        gw0, gw1 = gateways[d]
        fibers.append(_fiber(gw0, gw1, 2.0))
        for leaf in leaves[d]:
            fibers.append(_fiber(leaf, gw0, 1.0))
            fibers.append(_fiber(leaf, gw1, 1.0))
    # Inter-DC: two disjoint long-haul rings, one per gateway plane.
    dc_distance = {}
    for d in range(num_dcs):
        nxt = (d + 1) % num_dcs
        length = float(np.hypot(*(centers[d] - centers[nxt]))) + 50.0
        dc_distance[(d, nxt)] = length
        for plane in (0, 1):
            fibers.append(
                _fiber(gateways[d][plane], gateways[nxt][plane], length)
            )
    # Express chords between non-adjacent datacenters (plane 0).
    non_adjacent = [
        (a, b)
        for a in range(num_dcs)
        for b in range(a + 1, num_dcs)
        if b - a not in (1, num_dcs - 1)
    ]
    if non_adjacent and express_chords > 0:
        picks = rng.choice(
            len(non_adjacent),
            size=min(express_chords, len(non_adjacent)),
            replace=False,
        )
        for index in picks:
            a, b = non_adjacent[index]
            length = float(np.hypot(*(centers[a] - centers[b]))) + 50.0
            fibers.append(
                _fiber(gateways[a][0], gateways[b][0], length, f"f:chord{a}-{b}")
            )

    # One direct IP link per fiber, plus express inter-DC IP links that
    # ride the plane-0 ring between next-nearest gateway pairs (the DCI
    # overlay production fabrics run on top of the optical rings).
    fiber_id = {frozenset((f.endpoint_a, f.endpoint_b)): f.id for f in fibers}
    links = [
        IPLink(
            id=f"ip:{f.endpoint_a}--{f.endpoint_b}",
            src=f.endpoint_a,
            dst=f.endpoint_b,
            fiber_path=(f.id,),
            spectral_efficiency=_SPECTRAL_EFFICIENCY,
        )
        for f in fibers
    ]
    for d in range(num_dcs):
        mid = (d + 1) % num_dcs
        far = (d + 2) % num_dcs
        if far == d:
            break
        path = (
            fiber_id[frozenset((gateways[d][0], gateways[mid][0]))],
            fiber_id[frozenset((gateways[mid][0], gateways[far][0]))],
        )
        links.append(
            IPLink(
                id=f"ip:dc{d}--dc{far}:express",
                src=gateways[d][0],
                dst=gateways[far][0],
                fiber_path=path,
                spectral_efficiency=_SPECTRAL_EFFICIENCY,
            )
        )

    network = Network(nodes, fibers, links)

    # East-west gravity traffic between leaf pods of different DCs,
    # plus a smaller intra-DC component between sibling leaves.
    all_leaves = [leaf for pod in leaves for leaf in pod]
    masses = rng.lognormal(mean=0.0, sigma=0.5, size=len(all_leaves))
    dc_of = {leaf: d for d, pod in enumerate(leaves) for leaf in pod}
    weights: dict[tuple[str, str], float] = {}
    for i, a in enumerate(all_leaves):
        for j, b in enumerate(all_leaves):
            if i == j:
                continue
            share = (
                intra_dc_fraction if dc_of[a] == dc_of[b] else 1.0
            )
            if share <= 0.0:
                continue
            weights[(a, b)] = masses[i] * masses[j] * share
    norm = demand_gbps / sum(weights.values())
    traffic = TrafficMatrix(
        Flow(a, b, weight * norm) for (a, b), weight in weights.items()
    )

    _assign_initial_capacities(network, traffic, 0.6, capacity_unit)
    _provision_spectrum(network)

    failures = all_single_fiber_failures(network)
    # One gateway outage per DC: the plane-0 gateway fails, traffic
    # falls back to plane 1 (leaves are dual-homed, rings are disjoint).
    failures.extend(
        FailureScenario(id=f"site:{gateways[d][0]}", nodes=frozenset({gateways[d][0]}))
        for d in range(num_dcs)
    )

    return PlanningInstance(
        name=name,
        network=network,
        traffic=traffic,
        failures=failures,
        cost_model=CostModel(cost_per_gbps_km=1.0, fiber_fixed_charge=False),
        capacity_unit=capacity_unit,
        horizon="short",
    )


# ----------------------------------------------------------------------
# Generation stages
# ----------------------------------------------------------------------
def _distance(positions: np.ndarray, i: int, j: int) -> float:
    return float(np.hypot(*(positions[i] - positions[j]))) + 50.0


def _build_fiber_graph(
    node_names: list[str],
    positions: np.ndarray,
    spec: TopologySpec,
    rng: np.random.Generator,
) -> nx.Graph:
    """Euclidean MST plus Waxman shortcuts; edges carry ``length`` km."""
    n = len(node_names)
    complete = nx.Graph()
    for i in range(n):
        for j in range(i + 1, n):
            complete.add_edge(
                node_names[i], node_names[j], length=_distance(positions, i, j)
            )
    graph = nx.minimum_spanning_tree(complete, weight="length")
    target_extra = max(2, int(round(n * spec.extra_fiber_factor)))
    # Waxman: prefer shorter shortcuts, never duplicate.
    candidates = [
        (a, b, data["length"])
        for a, b, data in complete.edges(data=True)
        if not graph.has_edge(a, b)
    ]
    lengths = np.array([c[2] for c in candidates])
    weights = np.exp(-lengths / (0.3 * _PLANE_KM))
    weights = weights / weights.sum()
    chosen = rng.choice(
        len(candidates), size=min(target_extra, len(candidates)),
        replace=False, p=weights,
    )
    for index in chosen:
        a, b, length = candidates[index]
        graph.add_edge(a, b, length=length)
    # Real backbones survive any single fiber cut: augment to
    # 2-edge-connectivity with the shortest available extra fibers.
    augmentation = nx.k_edge_augmentation(
        graph,
        k=2,
        avail=[(a, b, d["length"]) for a, b, d in complete.edges(data=True)],
        weight="length",
    )
    for a, b in augmentation:
        graph.add_edge(a, b, length=complete.edges[a, b]["length"])
    return graph


def _shortest_fiber_path(
    fiber_graph: nx.Graph, fiber_id: dict, src: str, dst: str
) -> tuple[str, ...]:
    path = nx.shortest_path(fiber_graph, src, dst, weight="length")
    return tuple(
        fiber_id[frozenset((path[k], path[k + 1]))] for k in range(len(path) - 1)
    )


def _build_ip_links(
    fiber_graph: nx.Graph,
    fiber_id: dict,
    spec: TopologySpec,
    scale: float,
    rng: np.random.Generator,
) -> list[IPLink]:
    links: list[IPLink] = []
    # Direct links, one per fiber.
    for a, b in sorted(fiber_graph.edges):
        links.append(
            IPLink(
                id=f"ip:{a}--{b}",
                src=a,
                dst=b,
                fiber_path=(fiber_id[frozenset((a, b))],),
                spectral_efficiency=_SPECTRAL_EFFICIENCY,
            )
        )
    # Express links between distant pairs.
    node_list = sorted(fiber_graph.nodes)
    num_express = max(1, int(round(spec.express_links * scale)))
    non_adjacent = [
        (a, b)
        for i, a in enumerate(node_list)
        for b in node_list[i + 1 :]
        if not fiber_graph.has_edge(a, b)
    ]
    if non_adjacent:
        picks = rng.choice(
            len(non_adjacent), size=min(num_express, len(non_adjacent)), replace=False
        )
        for index in picks:
            a, b = non_adjacent[index]
            path = _shortest_fiber_path(fiber_graph, fiber_id, a, b)
            links.append(
                IPLink(
                    id=f"ip:{a}--{b}:express",
                    src=a,
                    dst=b,
                    fiber_path=path,
                    spectral_efficiency=_SPECTRAL_EFFICIENCY,
                )
            )
    # Parallel links over alternate fiber paths where one exists.
    num_parallel = int(round(len(fiber_graph.edges) * spec.parallel_fraction))
    direct_edges = sorted(fiber_graph.edges)
    if num_parallel and direct_edges:
        picks = rng.choice(
            len(direct_edges), size=min(num_parallel, len(direct_edges)),
            replace=False,
        )
        for index in picks:
            a, b = direct_edges[index]
            detour = _alternate_path(fiber_graph, fiber_id, a, b)
            links.append(
                IPLink(
                    id=f"ip:{a}--{b}:par",
                    src=a,
                    dst=b,
                    fiber_path=detour,
                    spectral_efficiency=_SPECTRAL_EFFICIENCY,
                )
            )
    return links


def _alternate_path(
    fiber_graph: nx.Graph, fiber_id: dict, a: str, b: str
) -> tuple[str, ...]:
    """Cheapest fiber path from a to b avoiding the direct fiber if possible."""
    trimmed = fiber_graph.copy()
    trimmed.remove_edge(a, b)
    try:
        path = nx.shortest_path(trimmed, a, b, weight="length")
        return tuple(
            fiber_id[frozenset((path[k], path[k + 1]))]
            for k in range(len(path) - 1)
        )
    except nx.NetworkXNoPath:
        # Bridge edge: the parallel link rides the same fiber.
        return (fiber_id[frozenset((a, b))],)


def _build_candidates(
    node_names: list[str],
    positions: np.ndarray,
    fiber_graph: nx.Graph,
    fiber_id: dict,
    spec: TopologySpec,
    scale: float,
    rng: np.random.Generator,
) -> tuple[list[Fiber], list[IPLink]]:
    """Candidate fibers (buildable, with cost) and IP links over them."""
    num_candidates = max(1, int(round(spec.candidate_fibers * scale)))
    index_of = {name: i for i, name in enumerate(node_names)}
    non_adjacent = [
        (a, b)
        for i, a in enumerate(sorted(node_names))
        for b in sorted(node_names)[i + 1 :]
        if not fiber_graph.has_edge(a, b)
    ]
    fibers: list[Fiber] = []
    links: list[IPLink] = []
    if not non_adjacent:
        return fibers, links
    picks = rng.choice(
        len(non_adjacent), size=min(num_candidates, len(non_adjacent)), replace=False
    )
    for index in picks:
        a, b = non_adjacent[index]
        length = _distance(positions, index_of[a], index_of[b])
        fiber = Fiber(
            id=f"f:{a}--{b}:cand",
            endpoint_a=a,
            endpoint_b=b,
            length_km=length,
            max_spectrum=_DEFAULT_SPECTRUM,
            cost=length * 150.0,  # build cost scales with distance
            in_service=False,
        )
        fibers.append(fiber)
        links.append(
            IPLink(
                id=f"ip:{a}--{b}:cand",
                src=a,
                dst=b,
                fiber_path=(fiber.id,),
                capacity=0.0,
                min_capacity=0.0,
                spectral_efficiency=_SPECTRAL_EFFICIENCY,
            )
        )
    return fibers, links


def _assign_initial_capacities(
    network: Network,
    traffic: TrafficMatrix,
    fill: float,
    capacity_unit: float,
) -> None:
    """Route no-failure demand on shortest paths; set production capacities.

    Candidate links (long horizon) stay at zero with a zero floor (the
    paper: "C_min is set to 0 for the candidate links to be added").
    Every *existing* link gets ``min_capacity`` equal to its production
    capacity (Eq. 5's floor) in both horizons -- deployed hardware is
    never ripped out.
    """
    routing = nx.MultiGraph()
    for link in network.links.values():
        if link.id.endswith(":cand"):
            continue
        routing.add_edge(
            link.src, link.dst, key=link.id, length=network.link_length_km(link.id)
        )
    load: dict[str, float] = {lid: 0.0 for lid in network.links}
    for src, sinks in traffic.by_source().items():
        for dst, demand in sinks.items():
            path = nx.shortest_path(routing, src, dst, weight="length")
            for a, b in zip(path, path[1:]):
                # Cheapest parallel edge on this hop.
                edge_data = routing.get_edge_data(a, b)
                best = min(edge_data, key=lambda k: edge_data[k]["length"])
                load[best] += demand
    for link_id, link in list(network.links.items()):
        if link.id.endswith(":cand"):
            continue
        capacity = math.ceil(load[link_id] * fill / capacity_unit) * capacity_unit
        floor = capacity
        network.links[link_id] = IPLink(
            id=link.id,
            src=link.src,
            dst=link.dst,
            fiber_path=link.fiber_path,
            capacity=capacity,
            min_capacity=floor,
            spectral_efficiency=link.spectral_efficiency,
        )


def _provision_spectrum(network: Network) -> None:
    """Ensure every fiber has headroom over the production load.

    Operators provision spectrum (or extra fiber pairs, abstracted here
    as a larger ``max_spectrum``) ahead of demand; we size each fiber to
    at least 2.5x its initial consumption, rounded up to a half-band,
    so planning has realistic room to add capacity.
    """
    from dataclasses import replace

    band = _DEFAULT_SPECTRUM / 2.0
    for fiber_id, fiber in list(network.fibers.items()):
        used = network.spectrum_used(fiber_id)
        needed = max(_DEFAULT_SPECTRUM, math.ceil(used * 2.5 / band) * band)
        if needed > fiber.max_spectrum:
            network.fibers[fiber_id] = replace(fiber, max_spectrum=needed)


def _site_failures(
    network: Network, spec: TopologySpec, scale: float
) -> list[FailureScenario]:
    """Fail the highest-degree sites (most impactful outages)."""
    count = int(round(spec.site_failures * scale))
    if count <= 0:
        return []
    # A site failure must leave the rest of the network connected, or no
    # capacity assignment could ever satisfy the surviving flows; skip
    # articulation points of the fiber graph.
    fiber_graph = nx.Graph()
    fiber_graph.add_nodes_from(network.nodes)
    for fiber in network.fibers.values():
        if fiber.in_service:
            fiber_graph.add_edge(fiber.endpoint_a, fiber.endpoint_b)
    cut_vertices = set(nx.articulation_points(fiber_graph))
    degree = {
        name: len(network.links_at_node(name))
        for name in network.nodes
        if name not in cut_vertices
    }
    busiest = sorted(degree, key=degree.get, reverse=True)[:count]
    return [
        FailureScenario(id=f"site:{name}", nodes=frozenset({name}))
        for name in busiest
    ]
