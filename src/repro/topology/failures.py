"""Failure scenarios and their cross-layer expansion.

A failure lives in the optical layer (fiber cuts), the site layer (node
outages), or a shared-risk link group (SRLG: several fibers in one
conduit).  Because IP links ride fiber paths, a single optical failure
typically takes down several IP links at once -- the cross-layer coupling
the paper highlights in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.topology.network import Network


@dataclass(frozen=True)
class FailureScenario:
    """A set of simultaneously failed fibers and/or sites."""

    id: str
    fibers: frozenset[str] = field(default_factory=frozenset)
    nodes: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self):
        if not self.fibers and not self.nodes:
            raise TopologyError(f"failure {self.id}: must fail something")

    def failed_link_ids(self, network: Network) -> frozenset[str]:
        """IP links taken down by this failure.

        A link fails when any fiber on its path fails or either endpoint
        site fails.
        """
        for fiber_id in self.fibers:
            if fiber_id not in network.fibers:
                raise TopologyError(
                    f"failure {self.id}: unknown fiber {fiber_id}"
                )
        for node in self.nodes:
            if node not in network.nodes:
                raise TopologyError(f"failure {self.id}: unknown node {node}")
        failed = set()
        for link in network.links.values():
            if self.nodes & {link.src, link.dst}:
                failed.add(link.id)
                continue
            if self.fibers.intersection(link.fiber_path):
                failed.add(link.id)
        return frozenset(failed)

    @property
    def is_site_failure(self) -> bool:
        return bool(self.nodes)


def all_single_fiber_failures(network: Network) -> list[FailureScenario]:
    """One scenario per in-service or candidate fiber (single fiber cut)."""
    return [
        FailureScenario(id=f"fiber:{fiber_id}", fibers=frozenset({fiber_id}))
        for fiber_id in network.fibers
    ]


def all_single_node_failures(
    network: Network, exclude: frozenset[str] = frozenset()
) -> list[FailureScenario]:
    """One scenario per site, excluding ``exclude`` (e.g. sources that
    cannot be protected against their own failure)."""
    return [
        FailureScenario(id=f"site:{name}", nodes=frozenset({name}))
        for name in network.nodes
        if name not in exclude
    ]


def srlg_failures(
    network: Network, groups: dict[str, frozenset[str]]
) -> list[FailureScenario]:
    """Shared-risk link groups: each group of fibers fails together."""
    scenarios = []
    for group_id, fiber_ids in groups.items():
        for fiber_id in fiber_ids:
            if fiber_id not in network.fibers:
                raise TopologyError(f"srlg {group_id}: unknown fiber {fiber_id}")
        scenarios.append(
            FailureScenario(id=f"srlg:{group_id}", fibers=frozenset(fiber_ids))
        )
    return scenarios
