"""Traffic demand: flows, classes of service, reliability policy.

The paper's reliability policy "specifies the demand of flows with which
Classes of Service (CoS) has to be satisfied under which subset of
failure scenarios".  :class:`ReliabilityPolicy` maps each CoS to the
failure subset it must survive; the plan evaluator and the ILP both
consult it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import TrafficError
from repro.seeding import as_generator


@dataclass(frozen=True)
class ClassOfService:
    """A service class with a protection requirement."""

    name: str
    priority: int = 0


BEST_EFFORT = ClassOfService("best-effort", priority=0)
PROTECTED = ClassOfService("protected", priority=1)


@dataclass(frozen=True)
class Flow:
    """A site-to-site demand in Gbps."""

    src: str
    dst: str
    demand: float
    cos: ClassOfService = PROTECTED

    def __post_init__(self):
        if self.src == self.dst:
            raise TrafficError("flow endpoints must differ")
        if self.demand < 0:
            raise TrafficError("flow demand must be >= 0")


class TrafficMatrix:
    """A collection of flows with aggregation helpers."""

    def __init__(self, flows: Iterable[Flow] = ()):
        self.flows: list[Flow] = list(flows)
        pairs = {(f.src, f.dst, f.cos.name) for f in self.flows}
        if len(pairs) != len(self.flows):
            raise TrafficError("duplicate (src, dst, cos) flow entries")

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self):
        return iter(self.flows)

    @property
    def total_demand(self) -> float:
        return sum(f.demand for f in self.flows)

    def sources(self) -> list[str]:
        """Distinct sources in first-appearance order."""
        seen: dict[str, None] = {}
        for flow in self.flows:
            seen.setdefault(flow.src, None)
        return list(seen)

    def by_source(self) -> dict[str, dict[str, float]]:
        """Source aggregation (Section 5): src -> {dst: total demand}.

        Flows sharing a source merge into one multi-sink commodity,
        shrinking the per-failure LP from O(f*m) to O(m^2) constraints.
        """
        aggregated: dict[str, dict[str, float]] = {}
        for flow in self.flows:
            sinks = aggregated.setdefault(flow.src, {})
            sinks[flow.dst] = sinks.get(flow.dst, 0.0) + flow.demand
        return aggregated

    def filter_cos(self, cos_names: "set[str] | None") -> "TrafficMatrix":
        """Restrict to the given CoS names (None keeps everything)."""
        if cos_names is None:
            return self
        return TrafficMatrix([f for f in self.flows if f.cos.name in cos_names])

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Uniformly scale all demands (demand-forecast what-ifs)."""
        if factor < 0:
            raise TrafficError("scale factor must be >= 0")
        return TrafficMatrix(
            Flow(f.src, f.dst, f.demand * factor, f.cos) for f in self.flows
        )


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Which failures each class of service must survive.

    ``cos_failure_sets`` maps a CoS name to the set of failure-scenario
    ids its flows must survive; ``None`` means *all* scenarios (the
    default posture for protected traffic).
    """

    cos_failure_sets: dict = field(default_factory=dict)

    def required_failures(self, cos_name: str, all_failure_ids: list[str]) -> list[str]:
        subset = self.cos_failure_sets.get(cos_name)
        if subset is None:
            return list(all_failure_ids)
        return [fid for fid in all_failure_ids if fid in subset]


def gravity_traffic(
    node_names: list[str],
    total_demand: float,
    rng: "int | np.random.Generator | None" = None,
    sparsity: float = 0.0,
    cos: ClassOfService = PROTECTED,
) -> TrafficMatrix:
    """Generate a gravity-model traffic matrix.

    Each node gets a random mass; demand between (i, j) is proportional
    to ``mass_i * mass_j``.  ``sparsity`` drops that fraction of pairs,
    which reproduces the site-to-site flow counts of the paper's
    production matrices without their (confidential) values.
    """
    if total_demand < 0:
        raise TrafficError("total demand must be >= 0")
    if not 0.0 <= sparsity < 1.0:
        raise TrafficError("sparsity must be in [0, 1)")
    rng = as_generator(rng)
    masses = rng.lognormal(mean=0.0, sigma=0.7, size=len(node_names))
    weights = {}
    for i, a in enumerate(node_names):
        for j, b in enumerate(node_names):
            if i == j:
                continue
            if sparsity and rng.random() < sparsity:
                continue
            weights[(a, b)] = masses[i] * masses[j]
    if not weights:
        return TrafficMatrix()
    norm = total_demand / sum(weights.values())
    flows = [
        Flow(a, b, weight * norm, cos) for (a, b), weight in weights.items()
    ]
    return TrafficMatrix(flows)
