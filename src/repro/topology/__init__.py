"""The two-layer (optical L1 + IP L3) network model.

This package models everything Section 2-3 of the paper describes:
sites, optical fibers, IP links mapped to fiber paths (parallel links are
first-class), failure scenarios that cross layers, traffic matrices with
classes of service, the cost model of Eq. 1, and the node-link
transformation of Section 4.2.

The unit of work for planners is a :class:`PlanningInstance`, which
bundles the five inputs of Fig. 3: traffic demand, network topology,
failure scenarios, reliability policy, and cost model.
"""

from repro.topology.elements import Fiber, IPLink, Node
from repro.topology.network import Network
from repro.topology.failures import (
    FailureScenario,
    all_single_fiber_failures,
    all_single_node_failures,
    srlg_failures,
)
from repro.topology.traffic import (
    ClassOfService,
    Flow,
    ReliabilityPolicy,
    TrafficMatrix,
)
from repro.topology.cost import CostModel
from repro.topology.transform import LinkGraph, node_link_transform
from repro.topology.instance import PlanningInstance
from repro.topology import generators, datasets

__all__ = [
    "Node",
    "Fiber",
    "IPLink",
    "Network",
    "FailureScenario",
    "all_single_fiber_failures",
    "all_single_node_failures",
    "srlg_failures",
    "Flow",
    "ClassOfService",
    "ReliabilityPolicy",
    "TrafficMatrix",
    "CostModel",
    "LinkGraph",
    "node_link_transform",
    "PlanningInstance",
    "generators",
    "datasets",
]
