"""Whole-instance consistency checks.

:func:`validate_instance` runs every structural invariant a planner
relies on and returns a list of human-readable problems (empty when the
instance is sound).  Planners call :func:`ensure_valid` at their entry
points so malformed inputs fail fast with a clear message instead of a
mysterious infeasibility.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import MalformedInstanceError, TopologyError
from repro.topology.instance import PlanningInstance


def validate_instance(instance: PlanningInstance) -> list[str]:
    """Return a list of problems with ``instance`` (empty = valid)."""
    problems: list[str] = []
    network = instance.network

    # Fiber-path continuity is enforced on construction; re-check anyway
    # since networks are mutable.
    for link in network.links.values():
        try:
            network._check_fiber_path(link)
        except TopologyError as exc:
            problems.append(str(exc))
        if link.capacity < link.min_capacity:
            problems.append(
                f"link {link.id}: capacity {link.capacity} below floor "
                f"{link.min_capacity}"
            )

    # The IP topology must connect every flow's endpoints (ignoring
    # failures; per-failure reachability is the evaluator's job).
    ip_graph = nx.Graph()
    ip_graph.add_nodes_from(network.nodes)
    for link in network.links.values():
        ip_graph.add_edge(link.src, link.dst)
    for flow in instance.traffic:
        if not nx.has_path(ip_graph, flow.src, flow.dst):
            problems.append(
                f"flow {flow.src}->{flow.dst}: no IP path even without failures"
            )

    # Failures must reference known elements (raises inside).
    for failure in instance.failures:
        try:
            failure.failed_link_ids(network)
        except TopologyError as exc:
            problems.append(str(exc))

    # Spectrum must be feasible at the starting capacities.
    for fiber_id in network.fibers:
        headroom = network.spectrum_headroom(fiber_id)
        if headroom < -1e-9:
            problems.append(
                f"fiber {fiber_id}: starting capacities violate spectrum "
                f"by {-headroom:.1f} GHz"
            )

    # Policy must reference known failure ids.
    known = set(instance.failure_ids)
    for cos, failure_ids in instance.policy.cos_failure_sets.items():
        if failure_ids is None:
            continue
        for fid in failure_ids:
            if fid not in known:
                problems.append(f"policy for {cos}: unknown failure {fid}")

    return problems


def ensure_valid(instance: PlanningInstance) -> None:
    """Raise :class:`MalformedInstanceError` when the instance is malformed.

    The error type doubles as :class:`TopologyError` (legacy callers)
    and :class:`~repro.errors.ScenarioError` (scenario verifiers treat a
    malformed instance as one typed family, not ad-hoc exceptions).
    """
    problems = validate_instance(instance)
    if problems:
        summary = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise MalformedInstanceError(
            f"invalid instance {instance.name}: {summary}{more}"
        )
