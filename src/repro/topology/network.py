"""The two-layer network: sites + fibers (L1) and IP links (L3).

A :class:`Network` is a mutable container with integrity checks: IP
links must ride a contiguous path of known fibers connecting their
endpoints.  Capacities are the only routinely mutated state (planning
adds capacity); everything else is structural.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import TopologyError
from repro.topology.elements import Fiber, IPLink, Node


class Network:
    """A cross-layer network topology."""

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        fibers: Iterable[Fiber] = (),
        links: Iterable[IPLink] = (),
    ):
        self.nodes: dict[str, Node] = {}
        self.fibers: dict[str, Fiber] = {}
        self.links: dict[str, IPLink] = {}
        # Fiber paths and lengths are fixed once built, so the per-link
        # length sum is memoized; structural mutation invalidates it.
        self._link_length_cache: dict[str, float] = {}
        self._unit_cost_cache: "tuple | None" = None
        for node in nodes:
            self.add_node(node)
        for fiber in fibers:
            self.add_fiber(fiber)
        for link in links:
            self.add_link(link)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node {node.name}")
        self.nodes[node.name] = node

    def add_fiber(self, fiber: Fiber) -> None:
        if fiber.id in self.fibers:
            raise TopologyError(f"duplicate fiber {fiber.id}")
        for endpoint in (fiber.endpoint_a, fiber.endpoint_b):
            if endpoint not in self.nodes:
                raise TopologyError(f"fiber {fiber.id}: unknown node {endpoint}")
        self.fibers[fiber.id] = fiber
        self._link_length_cache.clear()
        self._unit_cost_cache = None

    def add_link(self, link: IPLink) -> None:
        if link.id in self.links:
            raise TopologyError(f"duplicate ip link {link.id}")
        for endpoint in (link.src, link.dst):
            if endpoint not in self.nodes:
                raise TopologyError(f"ip link {link.id}: unknown node {endpoint}")
        self._check_fiber_path(link)
        self.links[link.id] = link
        self._link_length_cache.clear()
        self._unit_cost_cache = None

    def _check_fiber_path(self, link: IPLink) -> None:
        """Verify the fiber path is contiguous from link.src to link.dst."""
        position = link.src
        for fiber_id in link.fiber_path:
            fiber = self.fibers.get(fiber_id)
            if fiber is None:
                raise TopologyError(f"ip link {link.id}: unknown fiber {fiber_id}")
            if not fiber.touches(position):
                raise TopologyError(
                    f"ip link {link.id}: fiber path breaks at {position} "
                    f"(fiber {fiber_id} joins {fiber.endpoint_a}-{fiber.endpoint_b})"
                )
            position = (
                fiber.endpoint_b if fiber.endpoint_a == position else fiber.endpoint_a
            )
        if position != link.dst:
            raise TopologyError(
                f"ip link {link.id}: fiber path ends at {position}, not {link.dst}"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_fibers(self) -> int:
        return len(self.fibers)

    @property
    def num_links(self) -> int:
        return len(self.links)

    # ------------------------------------------------------------------
    # Cross-layer queries
    # ------------------------------------------------------------------
    def link_ids(self) -> list[str]:
        """IP link ids in insertion order (the canonical ordering)."""
        return list(self.links)

    def links_over_fiber(self, fiber_id: str) -> list[IPLink]:
        """``Delta_f`` -- IP links whose path traverses ``fiber_id``."""
        if fiber_id not in self.fibers:
            raise TopologyError(f"unknown fiber {fiber_id}")
        return [l for l in self.links.values() if fiber_id in l.fiber_path]

    def fibers_of_link(self, link_id: str) -> list[Fiber]:
        """``Psi_l`` -- fibers traversed by ``link_id``."""
        link = self.get_link(link_id)
        return [self.fibers[f] for f in link.fiber_path]

    def link_length_km(self, link_id: str) -> float:
        """Total fiber length under an IP link (memoized)."""
        length = self._link_length_cache.get(link_id)
        if length is None:
            length = sum(f.length_km for f in self.fibers_of_link(link_id))
            self._link_length_cache[link_id] = length
        return length

    def links_at_node(self, node_name: str) -> list[IPLink]:
        if node_name not in self.nodes:
            raise TopologyError(f"unknown node {node_name}")
        return [l for l in self.links.values() if node_name in l.endpoints]

    def parallel_groups(self) -> dict[frozenset, list[IPLink]]:
        """Group links by unordered endpoint pair."""
        groups: dict[frozenset, list[IPLink]] = {}
        for link in self.links.values():
            groups.setdefault(link.endpoints, []).append(link)
        return groups

    def get_link(self, link_id: str) -> IPLink:
        try:
            return self.links[link_id]
        except KeyError:
            raise TopologyError(f"unknown ip link {link_id}") from None

    def get_fiber(self, fiber_id: str) -> Fiber:
        try:
            return self.fibers[fiber_id]
        except KeyError:
            raise TopologyError(f"unknown fiber {fiber_id}") from None

    def get_node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name}") from None

    # ------------------------------------------------------------------
    # Spectrum accounting (Eq. 4)
    # ------------------------------------------------------------------
    def spectrum_used(
        self, fiber_id: str, capacities: Mapping[str, float] | None = None
    ) -> float:
        """Spectrum consumed on a fiber: sum over links of C_l * phi_lf."""
        used = 0.0
        for link in self.links_over_fiber(fiber_id):
            capacity = (
                capacities[link.id] if capacities is not None else link.capacity
            )
            used += capacity * link.spectral_efficiency
        return used

    def spectrum_headroom(
        self, fiber_id: str, capacities: Mapping[str, float] | None = None
    ) -> float:
        """Remaining spectrum on a fiber (may be negative if violated)."""
        fiber = self.get_fiber(fiber_id)
        return fiber.max_spectrum - self.spectrum_used(fiber_id, capacities)

    def link_capacity_headroom(
        self, link_id: str, capacities: Mapping[str, float] | None = None
    ) -> float:
        """Max additional Gbps the link's fiber path can still carry.

        The binding fiber is the one with the least remaining spectrum;
        dividing by the link's spectral efficiency converts GHz to Gbps.
        """
        link = self.get_link(link_id)
        headroom = min(
            self.spectrum_headroom(f, capacities) for f in link.fiber_path
        )
        return max(headroom, 0.0) / link.spectral_efficiency

    def spectrum_feasible(
        self, capacities: Mapping[str, float] | None = None, tol: float = 1e-9
    ) -> bool:
        """Whether every fiber satisfies Eq. 4 under the given capacities."""
        return all(
            self.spectrum_headroom(f, capacities) >= -tol for f in self.fibers
        )

    # ------------------------------------------------------------------
    # Capacity state
    # ------------------------------------------------------------------
    def capacities(self) -> dict[str, float]:
        """Current capacity per link id."""
        return {link_id: link.capacity for link_id, link in self.links.items()}

    def capacity_vector(self) -> np.ndarray:
        """Capacities in canonical link order."""
        return np.array([l.capacity for l in self.links.values()])

    def set_capacity(self, link_id: str, capacity: float) -> None:
        self.links[link_id] = self.get_link(link_id).with_capacity(capacity)

    def add_capacity(self, link_id: str, amount: float) -> None:
        if amount < 0:
            raise TopologyError("use set_capacity to lower a capacity")
        link = self.get_link(link_id)
        self.links[link_id] = link.with_capacity(link.capacity + amount)

    def with_capacities(self, capacities: Mapping[str, float]) -> "Network":
        """Return a copy whose link capacities follow ``capacities``."""
        clone = self.copy()
        for link_id, capacity in capacities.items():
            clone.set_capacity(link_id, capacity)
        return clone

    def copy(self) -> "Network":
        """Structural copy (elements are immutable, so sharing is safe)."""
        clone = Network()
        clone.nodes = dict(self.nodes)
        clone.fibers = dict(self.fibers)
        clone.links = dict(self.links)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Network(nodes={self.num_nodes}, fibers={self.num_fibers}, "
            f"links={self.num_links})"
        )
