"""The domain-specific node-link transformation (Section 4.2, Fig. 5).

Network planning cares about *links* (their capacities), while GNNs are
most mature at *node* tasks.  The transformation maps every IP link of
the input topology to a node of the transformed graph; two transformed
nodes are adjacent iff their links share an endpoint site -- except
parallel links (same unordered endpoint pair), which are deliberately
left unconnected so their capacities do not propagate into each other
during message passing.

The transformed graph is exactly what the RL agent encodes: node
features are link capacities, and actions index transformed nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.network import Network


@dataclass
class LinkGraph:
    """The node-link-transformed topology.

    Attributes
    ----------
    link_ids:
        Transformed-node index -> IP link id (canonical link order of the
        source network).
    adjacency:
        Dense symmetric 0/1 matrix over transformed nodes.
    """

    link_ids: list[str]
    adjacency: np.ndarray

    def __post_init__(self):
        self._index = {lid: i for i, lid in enumerate(self.link_ids)}

    @property
    def num_nodes(self) -> int:
        return len(self.link_ids)

    def index_of(self, link_id: str) -> int:
        try:
            return self._index[link_id]
        except KeyError:
            raise TopologyError(f"link {link_id} not in transformed graph") from None

    def feature_matrix(
        self, capacities: "dict[str, float] | None", network: Network
    ) -> np.ndarray:
        """Raw (unnormalized) node features: current link capacity."""
        if capacities is None:
            capacities = network.capacities()
        return np.array([[capacities[lid]] for lid in self.link_ids])


def node_link_transform(network: Network, connect_parallel: bool = False) -> LinkGraph:
    """Transform ``network`` into its link graph (Fig. 5).

    Rules:

    - every IP link becomes a transformed node;
    - transformed nodes are adjacent iff the links share >= 1 endpoint
      site *and* are not parallel (parallel = same unordered endpoint
      pair, e.g. BC1/BC2 in Fig. 5 stay unconnected).

    ``connect_parallel=True`` drops the parallel-link exception -- the
    naive transformation the paper argues against (parallel capacities
    would propagate into each other during message passing).  Exposed
    for the ablation benchmark only.
    """
    if network.num_links == 0:
        raise TopologyError("cannot transform a network with no IP links")
    links = list(network.links.values())
    n = len(links)
    adjacency = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            a, b = links[i], links[j]
            if not a.shares_endpoint_with(b):
                continue
            if a.is_parallel_to(b) and not connect_parallel:
                continue
            adjacency[i, j] = adjacency[j, i] = 1.0
    return LinkGraph(link_ids=[l.id for l in links], adjacency=adjacency)
