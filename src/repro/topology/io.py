"""JSON serialization for planning instances.

The on-disk format is a single JSON document with five sections
(network, traffic, failures, policy, cost) so instances can be shared,
versioned, and diffed.  Round-tripping is exact for everything except
flow ordering inside the traffic matrix, which is preserved anyway.
"""

from __future__ import annotations

import json
import os

from repro.errors import MalformedInstanceError, ReproError
from repro.topology.cost import CostModel
from repro.topology.elements import Fiber, IPLink, Node
from repro.topology.failures import FailureScenario
from repro.topology.instance import PlanningInstance
from repro.topology.network import Network
from repro.topology.traffic import (
    ClassOfService,
    Flow,
    ReliabilityPolicy,
    TrafficMatrix,
)

FORMAT_VERSION = 1


def instance_to_dict(instance: PlanningInstance) -> dict:
    """Convert a planning instance to a JSON-serializable dict."""
    network = instance.network
    return {
        "format_version": FORMAT_VERSION,
        "name": instance.name,
        "horizon": instance.horizon,
        "capacity_unit": instance.capacity_unit,
        "nodes": [
            {
                "name": n.name,
                "region": n.region,
                "latitude": n.latitude,
                "longitude": n.longitude,
            }
            for n in network.nodes.values()
        ],
        "fibers": [
            {
                "id": f.id,
                "a": f.endpoint_a,
                "b": f.endpoint_b,
                "length_km": f.length_km,
                "max_spectrum": f.max_spectrum,
                "cost": f.cost,
                "in_service": f.in_service,
            }
            for f in network.fibers.values()
        ],
        "links": [
            {
                "id": l.id,
                "src": l.src,
                "dst": l.dst,
                "fiber_path": list(l.fiber_path),
                "capacity": l.capacity,
                "min_capacity": l.min_capacity,
                "spectral_efficiency": l.spectral_efficiency,
            }
            for l in network.links.values()
        ],
        "flows": [
            {
                "src": f.src,
                "dst": f.dst,
                "demand": f.demand,
                "cos": f.cos.name,
                "priority": f.cos.priority,
            }
            for f in instance.traffic
        ],
        "failures": [
            {
                "id": f.id,
                "fibers": sorted(f.fibers),
                "nodes": sorted(f.nodes),
            }
            for f in instance.failures
        ],
        "policy": {
            cos: (sorted(fids) if fids is not None else None)
            for cos, fids in instance.policy.cos_failure_sets.items()
        },
        "cost_model": {
            "cost_per_gbps_km": instance.cost_model.cost_per_gbps_km,
            "fiber_fixed_charge": instance.cost_model.fiber_fixed_charge,
        },
    }


def instance_from_dict(payload: dict) -> PlanningInstance:
    """Inverse of :func:`instance_to_dict`.

    Raises :class:`MalformedInstanceError` on any structural problem --
    wrong format version, missing sections or fields, or element
    constraints violated during reconstruction -- so scenario verifiers
    see one typed error family instead of raw ``KeyError``/``TypeError``.
    """
    if not isinstance(payload, dict):
        raise MalformedInstanceError(
            f"instance document must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise MalformedInstanceError(f"unsupported format version {version!r}")
    try:
        return _instance_from_dict(payload)
    except MalformedInstanceError:
        raise
    except ReproError as exc:
        # Element/instance constructors validate as they build; their
        # message already names the offending element.
        raise MalformedInstanceError(f"malformed instance: {exc}") from exc
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise MalformedInstanceError(
            f"malformed instance document: missing or mistyped field ({exc!r})"
        ) from exc


def _instance_from_dict(payload: dict) -> PlanningInstance:
    network = Network(
        nodes=[
            Node(
                name=n["name"],
                region=n.get("region", "default"),
                latitude=n.get("latitude", 0.0),
                longitude=n.get("longitude", 0.0),
            )
            for n in payload["nodes"]
        ],
        fibers=[
            Fiber(
                id=f["id"],
                endpoint_a=f["a"],
                endpoint_b=f["b"],
                length_km=f["length_km"],
                max_spectrum=f["max_spectrum"],
                cost=f["cost"],
                in_service=f["in_service"],
            )
            for f in payload["fibers"]
        ],
        links=[
            IPLink(
                id=l["id"],
                src=l["src"],
                dst=l["dst"],
                fiber_path=tuple(l["fiber_path"]),
                capacity=l["capacity"],
                min_capacity=l["min_capacity"],
                spectral_efficiency=l["spectral_efficiency"],
            )
            for l in payload["links"]
        ],
    )
    traffic = TrafficMatrix(
        Flow(
            src=f["src"],
            dst=f["dst"],
            demand=f["demand"],
            cos=ClassOfService(f.get("cos", "protected"), f.get("priority", 1)),
        )
        for f in payload["flows"]
    )
    failures = [
        FailureScenario(
            id=f["id"],
            fibers=frozenset(f["fibers"]),
            nodes=frozenset(f["nodes"]),
        )
        for f in payload["failures"]
    ]
    policy = ReliabilityPolicy(
        {
            cos: (set(fids) if fids is not None else None)
            for cos, fids in payload.get("policy", {}).items()
        }
    )
    cost = payload["cost_model"]
    return PlanningInstance(
        name=payload["name"],
        network=network,
        traffic=traffic,
        failures=failures,
        cost_model=CostModel(
            cost_per_gbps_km=cost["cost_per_gbps_km"],
            fiber_fixed_charge=cost["fiber_fixed_charge"],
        ),
        policy=policy,
        capacity_unit=payload["capacity_unit"],
        horizon=payload["horizon"],
    )


def save_instance(instance: PlanningInstance, path: "str | os.PathLike") -> None:
    """Write an instance to a JSON file."""
    with open(path, "w") as handle:
        json.dump(instance_to_dict(instance), handle, indent=1)


def load_instance(path: "str | os.PathLike") -> PlanningInstance:
    """Read an instance written by :func:`save_instance`.

    Raises :class:`MalformedInstanceError` when the file is not valid
    JSON or does not describe a sound instance.
    """
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise MalformedInstanceError(
                f"instance file {path} is not valid JSON: {exc}"
            ) from exc
    return instance_from_dict(payload)
