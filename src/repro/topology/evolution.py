"""Multi-period network evolution.

Section 2: planning is "a multi-phased, iterative process", and the
production topology "grows at a rate of 20% per year".  This module
models one planning cycle feeding the next: the deployed plan becomes
the new starting topology (deployed capacity is the new Eq. 5 floor --
operators do not rip out installed hardware), and the demand forecast
grows.

Example::

    instance = generators.make_instance("A")
    for year in range(3):
        result = planner.plan(instance)
        instance = evolve_instance(instance, result.final.capacities,
                                   traffic_growth=1.2)
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import PlanError
from repro.topology.instance import PlanningInstance


def evolve_instance(
    instance: PlanningInstance,
    deployed_capacities: dict[str, float],
    traffic_growth: float = 1.2,
    cycle_label: str | None = None,
) -> PlanningInstance:
    """Produce the next planning cycle's instance.

    - every link's capacity *and* ``min_capacity`` become the deployed
      capacity (installed hardware stays);
    - demand scales by ``traffic_growth`` (the paper's 20%/year default);
    - candidate fibers that the deployed plan lit become in-service
      (their build cost was paid this cycle).
    """
    if traffic_growth <= 0:
        raise PlanError("traffic growth must be positive")
    missing = set(instance.network.links) - set(deployed_capacities)
    if missing:
        raise PlanError(f"deployed plan missing links: {sorted(missing)[:3]}")

    network = instance.network.copy()
    for link_id, link in list(network.links.items()):
        deployed = deployed_capacities[link_id]
        if deployed < link.min_capacity - 1e-9:
            raise PlanError(
                f"deployed capacity on {link_id} below the current floor"
            )
        network.links[link_id] = replace(
            link, capacity=deployed, min_capacity=deployed
        )

    lit = instance.cost_model.lit_fibers(instance.network, deployed_capacities)
    for fiber_id, fiber in list(network.fibers.items()):
        if not fiber.in_service and fiber_id in lit:
            network.fibers[fiber_id] = replace(fiber, in_service=True)

    name = cycle_label or f"{instance.name}+1"
    return replace(
        instance,
        name=name,
        network=network,
        traffic=instance.traffic.scaled(traffic_growth),
    )
