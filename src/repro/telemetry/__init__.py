"""Lightweight observability: counters, gauges, timers and trace spans.

Usage from instrumented code::

    from repro import telemetry

    telemetry.counter("solver.lp_solves")          # +1
    telemetry.gauge("rl.best_cost", 42.0)
    with telemetry.timer("solver.lp_solve"):        # aggregate stats
        ...
    with telemetry.span("planning.ilp.solve", band="A") as sp:
        ...                                         # trace event + stats
        sp.set(status="optimal")
    telemetry.event("rl.ppo.epoch", epoch=3, loss=0.1)  # instant event

Collection is **off by default**; every entry point checks one boolean
and returns immediately, so instrumentation in hot paths (the solver,
the failure checkers) is effectively free unless a run opts in with
:func:`enable` — e.g. via the CLI's ``--profile out.jsonl`` flag, which
also exports the span/event buffer as JSONL (one event per line; see
:mod:`repro.telemetry.trace` for the schema).

The registry is process-global on purpose: instrumented modules never
thread a handle around, and a profiling run observes every component —
solver, evaluators, planners, trainers — with a single ``enable()``.
"""

from __future__ import annotations

import functools
import time as _time

from repro.telemetry.registry import Registry, TimerStat
from repro.telemetry.summarize import render_summary
from repro.telemetry.trace import (
    EVENT_KINDS,
    export_jsonl,
    load_jsonl,
    validate_event,
    validate_trace,
)

__all__ = [
    "Registry",
    "TimerStat",
    "EVENT_KINDS",
    "enable",
    "disable",
    "enabled",
    "reset",
    "counter",
    "counter_value",
    "gauge",
    "observe",
    "event",
    "timer",
    "span",
    "snapshot",
    "events",
    "flush",
    "summary",
    "export_jsonl",
    "load_jsonl",
    "validate_event",
    "validate_trace",
    "get_registry",
]

_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global registry (mainly for tests)."""
    return _REGISTRY


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def enable(trace_path: "str | None" = None) -> None:
    """Start collecting; ``trace_path`` exports JSONL on flush/disable."""
    _REGISTRY.enable(trace_path)


def disable() -> None:
    """Stop collecting (flushes the trace first if a path was set)."""
    _REGISTRY.disable()


def enabled() -> bool:
    return _REGISTRY.enabled


def reset() -> None:
    """Drop all recorded metrics and buffered events."""
    _REGISTRY.reset()


# ----------------------------------------------------------------------
# Recording (all no-ops while disabled)
# ----------------------------------------------------------------------
def counter(name: str, value: float = 1.0) -> None:
    """Increment a monotonically growing counter."""
    if _REGISTRY.enabled:
        _REGISTRY.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set a point-in-time value (last write wins)."""
    if _REGISTRY.enabled:
        _REGISTRY.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Feed an externally measured duration into a timer statistic."""
    if _REGISTRY.enabled:
        _REGISTRY.observe(name, seconds)


def event(name: str, **attrs) -> None:
    """Record one instantaneous structured trace event."""
    if _REGISTRY.enabled:
        _REGISTRY.record_event(name, attrs=attrs)


class timer:
    """Monotonic-clock timer usable as a context manager or decorator.

    The enabled check happens at ``__enter__``/call time, so a
    ``@timer(...)``-decorated function picks up a later ``enable()``.
    """

    __slots__ = ("name", "_start")

    def __init__(self, name: str):
        self.name = name
        self._start = None

    def __enter__(self) -> "timer":
        self._start = _time.perf_counter() if _REGISTRY.enabled else None
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._start is not None:
            _REGISTRY.observe(self.name, _time.perf_counter() - self._start)
            self._start = None
        return False

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with timer(self.name):
                return fn(*args, **kwargs)

        return wrapped


class span:
    """Timed trace span: records a JSONL event *and* a timer stat.

    Attributes passed to the constructor (or added with :meth:`set`)
    become the event's ``attrs``.
    """

    __slots__ = ("name", "attrs", "_start")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self._start = None

    def set(self, **attrs) -> "span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "span":
        self._start = _time.perf_counter() if _REGISTRY.enabled else None
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._start is not None:
            duration = _time.perf_counter() - self._start
            _REGISTRY.observe(self.name, duration)
            _REGISTRY.record_event(self.name, duration_s=duration, attrs=self.attrs)
            self._start = None
        return False


# ----------------------------------------------------------------------
# Read-out
# ----------------------------------------------------------------------
def counter_value(name: str) -> float:
    return _REGISTRY.counter_value(name)


def snapshot() -> dict:
    """JSON-serializable copy of all counters/gauges/timers."""
    return _REGISTRY.snapshot()


def events() -> list[dict]:
    """A copy of the buffered trace events."""
    return _REGISTRY.events()


def flush(path: "str | None" = None) -> "str | None":
    """Export buffered events as JSONL; returns the path written."""
    return _REGISTRY.flush(path)


def summary(title: str = "telemetry summary") -> str:
    """Human-readable table of every recorded metric."""
    return render_summary(snapshot(), title=title)
