"""Structured event tracing: the JSONL schema, exporter and validator.

Every trace line is one JSON object:

``name``
    Dotted event name, e.g. ``"solver.solve"`` (non-empty string).
``ts``
    Wall-clock timestamp, seconds since the epoch (float).
``kind``
    ``"span"`` (has a duration) or ``"event"`` (instantaneous).
``duration_s``
    Wall-clock duration in seconds; present iff ``kind == "span"``.
``attrs``
    Flat mapping of string keys to JSON scalars (str/int/float/bool/
    null) or lists of scalars.

The schema is deliberately flat so traces from different PRs can be
diffed line-by-line with standard tools (``jq``, ``sort``, ``diff``).
"""

from __future__ import annotations

import json
import pathlib

EVENT_KINDS = ("span", "event")

_SCALAR_TYPES = (str, int, float, bool, type(None))


def export_jsonl(events: list[dict], path) -> None:
    """Write one event per line to ``path`` (parent dirs created)."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, default=str) + "\n")


def load_jsonl(path) -> list[dict]:
    """Parse a trace written by :func:`export_jsonl`."""
    lines = pathlib.Path(path).read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def validate_event(event: dict) -> list[str]:
    """Check one trace event against the schema; return problems.

    An empty list means the event conforms.  Used by the golden trace
    test and available to external consumers of ``--profile`` output.
    """
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]

    name = event.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name must be a non-empty string")

    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts <= 0:
        problems.append("ts must be a positive number")

    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"kind must be one of {EVENT_KINDS}, got {kind!r}")

    duration = event.get("duration_s")
    if kind == "span":
        if not isinstance(duration, (int, float)) or isinstance(duration, bool):
            problems.append("span events require a numeric duration_s")
        elif duration < 0:
            problems.append("duration_s must be >= 0")
    elif duration is not None:
        problems.append("instant events must not carry duration_s")

    attrs = event.get("attrs")
    if not isinstance(attrs, dict):
        problems.append("attrs must be an object")
    else:
        for key, value in attrs.items():
            if not isinstance(key, str):
                problems.append(f"attr key {key!r} must be a string")
            if isinstance(value, _SCALAR_TYPES):
                continue
            if isinstance(value, (list, tuple)) and all(
                isinstance(item, _SCALAR_TYPES) for item in value
            ):
                continue
            problems.append(
                f"attr {key!r} must be a JSON scalar or list of scalars"
            )

    extra = set(event) - {"name", "ts", "kind", "duration_s", "attrs"}
    if extra:
        problems.append(f"unexpected keys: {sorted(extra)}")
    return problems


def validate_trace(events: list[dict]) -> list[str]:
    """Validate a whole trace; problems are prefixed with line numbers."""
    problems: list[str] = []
    for index, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"line {index + 1}: {problem}")
    return problems
