"""Process-global metric registry: counters, gauges, timer statistics.

The registry is the storage half of :mod:`repro.telemetry`; the facade
in ``__init__`` provides the cheap guarded entry points used by
instrumented code.  Everything here is thread-safe (the parallel
failure checker increments counters from worker threads) and
dependency-free so the solver / evaluator / RL hot paths can import it
without pulling in anything heavy.

Disabled is the default state and the fast path: the facade checks one
boolean before touching the registry, so instrumentation costs a
function call when telemetry is off.
"""

from __future__ import annotations

import math
import threading
import time


class TimerStat:
    """Aggregate statistics for one named timer."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def as_dict(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


class Registry:
    """Counters, gauges, timers and the span/event trace buffer."""

    def __init__(self):
        self._lock = threading.Lock()
        self.enabled = False
        self.trace_path: str | None = None
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}
        self._events: list[dict] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, trace_path: "str | None" = None) -> None:
        """Turn collection on, optionally exporting a JSONL trace."""
        with self._lock:
            self.enabled = True
            if trace_path is not None:
                self.trace_path = str(trace_path)

    def disable(self) -> None:
        """Turn collection off; flush the trace if a path was set."""
        self.flush()
        with self._lock:
            self.enabled = False
            self.trace_path = None

    def reset(self) -> None:
        """Drop all recorded metrics and events (keeps enabled state)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._events.clear()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds)

    def record_event(
        self,
        name: str,
        duration_s: "float | None" = None,
        attrs: "dict | None" = None,
    ) -> None:
        event = {
            "name": name,
            "ts": time.time(),
            "kind": "span" if duration_s is not None else "event",
            "attrs": attrs or {},
        }
        if duration_s is not None:
            event["duration_s"] = float(duration_s)
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> dict:
        """A JSON-serializable copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: stat.as_dict() for name, stat in self._timers.items()
                },
            }

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def flush(self, path: "str | None" = None) -> "str | None":
        """Write buffered events as JSONL; returns the path written."""
        from repro.telemetry.trace import export_jsonl

        target = path or self.trace_path
        if target is None:
            return None
        export_jsonl(self.events(), target)
        return target
