"""Render a registry snapshot as a fixed-width summary table."""

from __future__ import annotations


def render_summary(snapshot: dict, title: str = "telemetry summary") -> str:
    """Format counters, gauges and timers for terminal output."""
    lines = [title, "-" * len(title)]

    counters = snapshot.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_fmt_number(counters[name])}")

    gauges = snapshot.get("gauges", {})
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_fmt_number(gauges[name])}")

    timers = snapshot.get("timers", {})
    if timers:
        width = max(len(name) for name in timers)
        lines.append("timers:")
        header = (
            f"  {'name':<{width}}  {'count':>8}  {'total_s':>10}  "
            f"{'mean_ms':>10}  {'max_ms':>10}"
        )
        lines.append(header)
        for name in sorted(timers):
            stat = timers[name]
            lines.append(
                f"  {name:<{width}}  {stat['count']:>8}  "
                f"{stat['total_s']:>10.3f}  {stat['mean_s'] * 1e3:>10.3f}  "
                f"{stat['max_s'] * 1e3:>10.3f}"
            )

    if len(lines) == 2:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def _fmt_number(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.3f}"
