"""NeuroPlan reproduction: network planning with deep reinforcement learning.

This package reproduces the system described in *Network Planning with
Deep Reinforcement Learning* (SIGCOMM 2021).  It is organized as a set of
substrates plus the paper's core contribution:

- :mod:`repro.nn` -- a from-scratch numpy autodiff / neural-network engine
  (the PyTorch substitute).
- :mod:`repro.solver` -- a Gurobi-like LP/ILP modeling layer compiled to
  scipy's HiGHS backends.
- :mod:`repro.topology` -- the two-layer (optical + IP) network model,
  failures, traffic, cost model, and the node-link transformation.
- :mod:`repro.evaluator` -- the plan evaluator with source aggregation and
  stateful failure checking.
- :mod:`repro.planning` -- the ILP formulation (Eq. 1-5) and the *ILP* and
  *ILP-heur* baselines.
- :mod:`repro.rl` -- the planning environment and the actor-critic trainer
  (Algorithm 1).
- :mod:`repro.core` -- the two-stage NeuroPlan pipeline.

Quickstart::

    from repro import NeuroPlan, topologies

    instance = topologies.make_instance("A")
    planner = NeuroPlan(epochs=32, relax_factor=1.5, seed=0)
    result = planner.plan(instance)
    print(result.final_cost, result.first_stage_cost)
"""

from repro.version import __version__
from repro.core.neuroplan import NeuroPlan, NeuroPlanConfig
from repro.core.results import PlanningResult
from repro.topology import generators as topologies
from repro.planning.plan import NetworkPlan

__all__ = [
    "__version__",
    "NeuroPlan",
    "NeuroPlanConfig",
    "PlanningResult",
    "NetworkPlan",
    "topologies",
]
