"""Solver termination statuses."""

from __future__ import annotations

import enum


class Status(enum.Enum):
    """Outcome of :meth:`repro.solver.model.Model.optimize`."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"
    NOT_SOLVED = "not_solved"

    @property
    def has_solution(self) -> bool:
        """Whether variable values are available after this status.

        ``TIME_LIMIT`` may carry an incumbent for MILPs; callers must
        check :attr:`Model.has_incumbent` in that case.
        """
        return self is Status.OPTIMAL
