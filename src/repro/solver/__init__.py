"""A Gurobi-like LP/ILP modeling layer on scipy's HiGHS backends.

The paper formulates planning as an ILP and solves it with Gurobi; the
plan evaluator solves per-failure LPs with Gurobi as well.  Gurobi is
proprietary and unavailable here, so this package provides the same
modeling surface -- variables, linear expressions, constraints, a
minimization objective, ``optimize()`` -- compiled to
``scipy.optimize.linprog`` (LP) and ``scipy.optimize.milp`` (MILP), both
backed by the open-source HiGHS solver.

Key features used elsewhere in the repo:

- constraint matrices are compiled once and cached; variable-bound and
  constraint-RHS updates do *not* trigger recompilation, which implements
  the paper's "only update the constraints that are influenced by the
  failure" optimization (Section 5);
- a warm-start hint is emulated with an objective cutoff constraint
  (HiGHS via scipy takes no MIP start);
- time limits map to HiGHS time limits and surface as
  :data:`Status.TIME_LIMIT`.
"""

from repro.solver.expression import LinExpr, Variable, quicksum
from repro.solver.model import Constraint, Model
from repro.solver.status import Status

__all__ = ["LinExpr", "Variable", "quicksum", "Model", "Constraint", "Status"]
