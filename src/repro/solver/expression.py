"""Linear expressions over model variables.

:class:`LinExpr` is an immutable-ish sparse linear form
``sum_i coeff_i * var_i + constant`` supporting ``+ - *`` with scalars,
variables and other expressions, plus comparison operators that produce
constraint specifications consumed by :meth:`Model.add_constr` -- the
same ergonomics as ``gurobipy``::

    model.add_constr(2 * x + y <= 10, name="cap")
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SolverError


class Variable:
    """A decision variable; created only through :meth:`Model.add_var`."""

    __slots__ = ("index", "name", "lb", "ub", "vtype", "_model")

    CONTINUOUS = "C"
    INTEGER = "I"
    BINARY = "B"

    def __init__(self, index: int, name: str, lb: float, ub: float, vtype: str, model):
        self.index = index
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        self._model = model

    # -- value access ---------------------------------------------------
    @property
    def x(self) -> float:
        """Solution value (after a successful optimize)."""
        return self._model._value_of(self)

    def set_bounds(self, lb: float | None = None, ub: float | None = None) -> None:
        """Update bounds without invalidating the compiled matrices."""
        if lb is not None:
            self.lb = float(lb)
        if ub is not None:
            self.ub = float(ub)
        if self.lb > self.ub + 1e-12:
            raise SolverError(
                f"variable {self.name}: lb {self.lb} exceeds ub {self.ub}"
            )
        self._model._sync_var_bounds(self.index, self.lb, self.ub)

    # -- expression algebra ---------------------------------------------
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other):
        return self._as_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._as_expr() - other

    def __rsub__(self, other):
        return (-1.0) * self._as_expr() + other

    def __mul__(self, scalar):
        return self._as_expr() * scalar

    __rmul__ = __mul__

    def __neg__(self):
        return self._as_expr() * -1.0

    def __le__(self, other):
        return self._as_expr() <= other

    def __ge__(self, other):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._as_expr() == other

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Variable({self.name})"


class LinExpr:
    """Sparse linear expression: ``coeffs`` maps variable index -> coeff."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    @staticmethod
    def _coerce(other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other._as_expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, float(other))
        raise SolverError(f"cannot use {type(other).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant)

    def __add__(self, other):
        other = LinExpr._coerce(other)
        out = self.copy()
        for idx, coeff in other.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + coeff
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other):
        return self + LinExpr._coerce(other) * -1.0

    def __rsub__(self, other):
        return LinExpr._coerce(other) + self * -1.0

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise SolverError("expressions can only be scaled by numbers")
        return LinExpr(
            {idx: coeff * scalar for idx, coeff in self.coeffs.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- constraint construction -----------------------------------------
    def __le__(self, other):
        return ConstraintSpec(self - LinExpr._coerce(other), "<=")

    def __ge__(self, other):
        return ConstraintSpec(self - LinExpr._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        return ConstraintSpec(self - LinExpr._coerce(other), "==")

    def __hash__(self):
        return id(self)

    def value(self, values) -> float:
        """Evaluate the expression against an indexable of variable values."""
        total = self.constant
        for idx, coeff in self.coeffs.items():
            total += coeff * values[idx]
        return total

    def __repr__(self) -> str:  # pragma: no cover
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms} + {self.constant:g})"


class ConstraintSpec:
    """``expr sense 0`` produced by comparison operators, pre-normalization."""

    __slots__ = ("expr", "sense")

    def __init__(self, expr: LinExpr, sense: str):
        self.expr = expr
        self.sense = sense


def quicksum(terms: Iterable) -> LinExpr:
    """Sum variables/expressions/constants efficiently (like gurobipy)."""
    out = LinExpr()
    for term in terms:
        term = LinExpr._coerce(term)
        for idx, coeff in term.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + coeff
        out.constant += term.constant
    return out
