"""The optimization model: variables, constraints, objective, optimize().

Compilation strategy
--------------------
Constraints are normalized to rows of a single sparse matrix ``A`` with
per-row bounds ``row_lb <= A x <= row_ub`` (equalities have
``row_lb == row_ub``).  The matrix is compiled lazily and cached;
*adding* variables or constraints invalidates the cache, while updating
variable bounds or a constraint's RHS does not.  That asymmetry is what
makes the plan evaluator's stateful failure checking cheap: toggling a
failure only rewrites bounds, and re-solving reuses the compiled matrix
(the paper's "only update the constraints that are influenced by the
failure" optimization).

Incremental arrays
------------------
Row bounds, variable bounds and the signed objective vector are
mirrored into persistent numpy arrays that grow with the model and are
updated in place: ``Constraint.set_rhs`` / ``Variable.set_bounds``
write single cells, and the bulk APIs (:meth:`Model.set_row_ubs`,
:meth:`Model.set_var_ubs`) write vectorized slices.  ``optimize()``
therefore rebuilds nothing -- per-solve cost is proportional to what
changed since the last solve, not to the model size.

The MILP warm-start cutoff participates in the same scheme: instead of
an add/pop pair that discarded the compiled matrix on every warm-started
solve, the cutoff lives in a hidden persistent row (appended after the
user rows at compile time) whose RHS is set to the hint objective during
a warm-started solve and to ``+inf`` otherwise.  The row is invisible to
:attr:`Model.constraints` / :attr:`Model.num_constraints`.

Backends
--------
Models with integer variables solve with ``scipy.optimize.milp``
(HiGHS).  Unbudgeted LP solves run on a *persistent* HiGHS instance
(the bindings scipy vendors) created once per compiled matrix: bound
and objective updates are pushed as deltas (``changeRowBounds`` /
``changeColsBounds`` over the dirty indices only) and each re-solve
starts from the previous optimal basis -- the incremental-update
optimization that makes thousands of per-step feasibility re-checks
affordable.  Budgeted LP solves (``time_limit`` / ``iteration_limit``)
and environments without the vendored bindings fall back to
``scipy.optimize.linprog``, preserving the documented budget semantics.
``optimize(relax=True)`` solves the LP relaxation of a MILP.  A
warm-start hint is emulated with an objective cutoff (see
:meth:`Model.optimize`).
"""

from __future__ import annotations

import math
import os
import time
from typing import Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro import telemetry
from repro.errors import SolverError, SolverTimeoutError
from repro.resilience import faults
from repro.solver.expression import ConstraintSpec, LinExpr, Variable
from repro.solver.status import Status

_INF = math.inf

try:  # scipy >= 1.15 vendors the highspy bindings
    from scipy.optimize._highspy import _core as _highs_core
except ImportError:  # pragma: no cover - exercised via the linprog fallback
    _highs_core = None


def persistent_backend_available() -> bool:
    """Whether the persistent HiGHS LP backend can be used."""
    return _highs_core is not None


class _GrowableArray:
    """Amortized-growth float64 array (capacity doubling).

    Backs the model's incremental bound/objective vectors: ``append``
    is amortized O(1) and :attr:`array` is a zero-copy view of the live
    prefix, so per-solve access never rebuilds anything.
    """

    __slots__ = ("_buf", "_size")

    def __init__(self, capacity: int = 16):
        self._buf = np.empty(capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, value: float) -> None:
        if self._size == self._buf.shape[0]:
            grown = np.empty(self._buf.shape[0] * 2, dtype=np.float64)
            grown[: self._size] = self._buf[: self._size]
            self._buf = grown
        self._buf[self._size] = value
        self._size += 1

    @property
    def array(self) -> np.ndarray:
        """Writable view of the live prefix (invalidated by growth)."""
        return self._buf[: self._size]


class _PersistentLPError(Exception):
    """Internal: the persistent backend could not finish this solve."""


class _PersistentLP:
    """One HiGHS instance kept hot across re-solves of a fixed matrix.

    The instance owns a C++ copy of the constraint matrix; callers push
    bound/cost deltas and re-run, reusing the previous optimal basis.
    """

    __slots__ = ("_highs", "solve_count")

    def __init__(self, matrix, row_lb, row_ub, var_lb, var_ub, cost):
        csc = matrix.tocsc()
        lp = _highs_core.HighsLp()
        lp.num_col_ = int(matrix.shape[1])
        lp.num_row_ = int(matrix.shape[0])
        lp.col_cost_ = np.ascontiguousarray(cost, dtype=np.float64)
        lp.col_lower_ = np.ascontiguousarray(var_lb, dtype=np.float64)
        lp.col_upper_ = np.ascontiguousarray(var_ub, dtype=np.float64)
        lp.row_lower_ = np.ascontiguousarray(row_lb, dtype=np.float64)
        lp.row_upper_ = np.ascontiguousarray(row_ub, dtype=np.float64)
        lp.a_matrix_.format_ = _highs_core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = csc.indptr.astype(np.int32)
        lp.a_matrix_.index_ = csc.indices.astype(np.int32)
        lp.a_matrix_.value_ = np.ascontiguousarray(csc.data, dtype=np.float64)
        highs = _highs_core._Highs()
        highs.setOptionValue("output_flag", False)
        if highs.passModel(lp) == _highs_core.HighsStatus.kError:
            raise _PersistentLPError("HiGHS rejected the model")
        self._highs = highs
        self.solve_count = 0

    def update_rows(self, indices, lower, upper) -> None:
        highs = self._highs
        for index, lb, ub in zip(indices, lower, upper):
            highs.changeRowBounds(int(index), float(lb), float(ub))

    def update_cols(self, indices, lower, upper) -> None:
        idx = np.asarray(indices, dtype=np.int32)
        self._highs.changeColsBounds(
            idx.shape[0],
            idx,
            np.ascontiguousarray(lower, dtype=np.float64),
            np.ascontiguousarray(upper, dtype=np.float64),
        )

    def update_cost(self, cost) -> None:
        cost = np.ascontiguousarray(cost, dtype=np.float64)
        idx = np.arange(cost.shape[0], dtype=np.int32)
        self._highs.changeColsCost(cost.shape[0], idx, cost)

    def solve(self) -> "tuple[Status, float | None, np.ndarray | None]":
        """Run HiGHS; return (status, signed objective, solution)."""
        highs = self._highs
        highs.run()
        self.solve_count += 1
        model_status = highs.getModelStatus()
        core = _highs_core.HighsModelStatus
        if model_status == core.kOptimal:
            objective = float(highs.getInfo().objective_function_value)
            solution = np.asarray(highs.getSolution().col_value, dtype=np.float64)
            return Status.OPTIMAL, objective, solution
        if model_status == core.kInfeasible:
            return Status.INFEASIBLE, None, None
        if model_status == core.kUnbounded:
            return Status.UNBOUNDED, None, None
        # kUnboundedOrInfeasible and anything exotic: let the linprog
        # path (with its own presolve configuration) disambiguate.
        raise _PersistentLPError(f"unexpected HiGHS status {model_status}")


class Constraint:
    """A normalized row ``lb <= expr <= ub`` (without the constant term)."""

    __slots__ = ("index", "name", "coeffs", "lb", "ub", "_model")

    def __init__(self, index, name, coeffs, lb, ub, model):
        self.index = index
        self.name = name
        self.coeffs = coeffs  # dict var_index -> coefficient
        self.lb = lb
        self.ub = ub
        self._model = model

    def set_rhs(self, lb: float | None = None, ub: float | None = None) -> None:
        """Update the row bounds without recompiling the matrix."""
        if lb is not None:
            self.lb = float(lb)
        if ub is not None:
            self.ub = float(ub)
        if self.lb > self.ub + 1e-12:
            raise SolverError(f"constraint {self.name}: lb exceeds ub")
        self._model._sync_row_bounds(self.index, self.lb, self.ub)

    @property
    def slack(self) -> float:
        """ub - activity at the current solution (inf if ub is inf)."""
        activity = self._model._row_activity(self)
        return self.ub - activity

    @property
    def activity(self) -> float:
        """Row value at the current solution."""
        return self._model._row_activity(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constraint({self.name}, [{self.lb}, {self.ub}])"


class Model:
    """An LP/MILP model with a Gurobi-like API.

    Example::

        m = Model("diet")
        x = m.add_var(lb=0, name="x")
        y = m.add_var(lb=0, vtype=Variable.INTEGER, name="y")
        m.add_constr(x + 2 * y >= 3)
        m.set_objective(x + y)
        status = m.optimize()
        assert status is Status.OPTIMAL
        print(m.objective_value, x.x, y.x)

    ``lp_backend`` selects how pure-LP solves run: ``"persistent"``
    (default when available) keeps a hot HiGHS instance across
    re-solves, ``"linprog"`` forces the stateless scipy path.  The
    ``NEUROPLAN_LP_BACKEND`` environment variable overrides the
    default for all models.
    """

    def __init__(self, name: str = "model", lp_backend: str | None = None):
        if lp_backend is None:
            lp_backend = os.environ.get("NEUROPLAN_LP_BACKEND", "persistent")
        if lp_backend not in ("persistent", "linprog"):
            raise SolverError(
                f"lp_backend must be 'persistent' or 'linprog', got {lp_backend!r}"
            )
        self.name = name
        self.lp_backend = lp_backend
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective = LinExpr()
        self._sense = 1  # 1 = minimize, -1 = maximize
        self._matrix: sp.csr_matrix | None = None
        self._lp_split: tuple | None = None
        self._solution: np.ndarray | None = None
        self._objective_value: float | None = None
        self._status = Status.NOT_SOLVED
        self._solve_time = 0.0
        self._solve_count = 0
        # Incremental mirrors (see "Incremental arrays" in the module
        # docstring): grown by add_var/add_constr, written in place by
        # the bound setters, never rebuilt at solve time.
        self._row_lb = _GrowableArray()
        self._row_ub = _GrowableArray()
        self._var_lb = _GrowableArray()
        self._var_ub = _GrowableArray()
        self._obj_signed = _GrowableArray()
        self._integrality = _GrowableArray()
        self._num_integer = 0
        # Persistent-backend state: indices whose bounds changed since
        # they were last pushed to the hot HiGHS instance.
        self._persistent: _PersistentLP | None = None
        self._dirty_rows: set[int] = set()
        self._dirty_cols: set[int] = set()
        self._objective_dirty = False
        # Warm-start cutoff: a hidden row appended after the user rows.
        self._cutoff_coeffs: dict[int, float] | None = None
        self._cutoff_ub = _INF
        self._cutoff_dirty = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_var(
        self,
        lb: float = 0.0,
        ub: float = _INF,
        vtype: str = Variable.CONTINUOUS,
        name: str | None = None,
    ) -> Variable:
        """Create a decision variable."""
        if vtype not in (Variable.CONTINUOUS, Variable.INTEGER, Variable.BINARY):
            raise SolverError(f"unknown vtype {vtype!r}")
        if vtype == Variable.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise SolverError(f"variable lb {lb} exceeds ub {ub}")
        index = len(self.variables)
        var = Variable(index, name or f"x{index}", lb, ub, vtype, self)
        self.variables.append(var)
        self._var_lb.append(var.lb)
        self._var_ub.append(var.ub)
        self._obj_signed.append(0.0)
        integer = vtype != Variable.CONTINUOUS
        self._integrality.append(1.0 if integer else 0.0)
        self._num_integer += integer
        self._invalidate()
        return var

    def add_vars(
        self,
        count: int,
        lb: float = 0.0,
        ub: float = _INF,
        vtype: str = Variable.CONTINUOUS,
        prefix: str = "x",
    ) -> list[Variable]:
        """Create ``count`` homogeneous variables."""
        return [
            self.add_var(lb=lb, ub=ub, vtype=vtype, name=f"{prefix}{i}")
            for i in range(count)
        ]

    def add_constr(self, spec: ConstraintSpec, name: str | None = None) -> Constraint:
        """Add a constraint built from a comparison, e.g. ``x + y <= 3``."""
        if not isinstance(spec, ConstraintSpec):
            raise SolverError(
                "add_constr expects a comparison like `expr <= rhs`, got "
                f"{type(spec).__name__}"
            )
        rhs = -spec.expr.constant
        coeffs = {i: c for i, c in spec.expr.coeffs.items() if c != 0.0}
        if spec.sense == "<=":
            lb, ub = -_INF, rhs
        elif spec.sense == ">=":
            lb, ub = rhs, _INF
        else:
            lb = ub = rhs
        index = len(self.constraints)
        constr = Constraint(index, name or f"c{index}", coeffs, lb, ub, self)
        self.constraints.append(constr)
        self._row_lb.append(lb)
        self._row_ub.append(ub)
        self._invalidate()
        return constr

    def set_objective(self, expr: "LinExpr | Variable", sense: str = "min") -> None:
        """Set the (linear) objective; ``sense`` is ``"min"`` or ``"max"``."""
        expr = LinExpr._coerce(expr)
        if sense not in ("min", "max"):
            raise SolverError("sense must be 'min' or 'max'")
        self._objective = expr
        self._sense = 1 if sense == "min" else -1
        signed = self._obj_signed.array
        signed[:] = 0.0
        for index, coeff in expr.coeffs.items():
            signed[index] = coeff * self._sense
        self._objective_dirty = True
        self._mark_solution_stale()

    # ------------------------------------------------------------------
    # Incremental bound updates
    # ------------------------------------------------------------------
    def _sync_row_bounds(self, index: int, lb: float, ub: float) -> None:
        """Write one row's bounds into the incremental arrays."""
        self._row_lb.array[index] = lb
        self._row_ub.array[index] = ub
        self._dirty_rows.add(index)
        self._mark_solution_stale()

    def _sync_var_bounds(self, index: int, lb: float, ub: float) -> None:
        """Write one variable's bounds into the incremental arrays."""
        self._var_lb.array[index] = lb
        self._var_ub.array[index] = ub
        self._dirty_cols.add(index)
        self._mark_solution_stale()

    def set_row_ubs(self, constrs: Sequence[Constraint], values) -> None:
        """Vectorized ``set_rhs(ub=...)`` over many constraints at once.

        ``values`` must align with ``constrs``; lower bounds are left
        untouched.  One numpy write replaces per-row ``set_rhs`` calls
        on the evaluator's hot path.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (len(constrs),):
            raise SolverError(
                f"set_row_ubs: {len(constrs)} constraints but values shape "
                f"{values.shape}"
            )
        if len(constrs) == 0:
            return
        indices = np.fromiter(
            (c.index for c in constrs), dtype=np.int64, count=len(constrs)
        )
        if np.any(self._row_lb.array[indices] > values + 1e-12):
            raise SolverError("set_row_ubs: lb exceeds ub for at least one row")
        self._row_ub.array[indices] = values
        for constr, value in zip(constrs, values.tolist()):
            constr.ub = value
        self._dirty_rows.update(indices.tolist())
        self._mark_solution_stale()

    def set_var_ubs(self, variables: Sequence[Variable], values) -> None:
        """Vectorized ``set_bounds(ub=...)`` over many variables at once."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (len(variables),):
            raise SolverError(
                f"set_var_ubs: {len(variables)} variables but values shape "
                f"{values.shape}"
            )
        if len(variables) == 0:
            return
        indices = np.fromiter(
            (v.index for v in variables), dtype=np.int64, count=len(variables)
        )
        if np.any(self._var_lb.array[indices] > values + 1e-12):
            raise SolverError("set_var_ubs: lb exceeds ub for at least one variable")
        self._var_ub.array[indices] = values
        for var, value in zip(variables, values.tolist()):
            var.ub = value
        self._dirty_cols.update(indices.tolist())
        self._mark_solution_stale()

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return self._num_integer

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        if self._matrix is not None:
            # Only a *compiled* matrix being thrown away is a cache
            # invalidation worth counting; invalidating an un-compiled
            # model (during construction) is free.
            telemetry.counter("solver.cache_invalidations")
        self._matrix = None
        self._lp_split = None
        self._persistent = None
        self._dirty_rows.clear()
        self._dirty_cols.clear()
        self._mark_solution_stale()

    def _mark_solution_stale(self) -> None:
        self._solution = None
        self._objective_value = None
        self._status = Status.NOT_SOLVED

    def _compiled_matrix(self) -> sp.csr_matrix:
        if self._matrix is None:
            rows, cols, data = [], [], []
            for constr in self.constraints:
                for var_index, coeff in constr.coeffs.items():
                    rows.append(constr.index)
                    cols.append(var_index)
                    data.append(coeff)
            num_rows = len(self.constraints)
            if self._cutoff_coeffs is not None:
                for var_index, coeff in self._cutoff_coeffs.items():
                    rows.append(num_rows)
                    cols.append(var_index)
                    data.append(coeff)
                num_rows += 1
            self._matrix = sp.csr_matrix(
                (data, (rows, cols)),
                shape=(num_rows, len(self.variables)),
            )
        return self._matrix

    def _row_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Row bound views, including the hidden cutoff row if present."""
        lb, ub = self._row_lb.array, self._row_ub.array
        if self._cutoff_coeffs is not None:
            lb = np.append(lb, -_INF)
            ub = np.append(ub, self._cutoff_ub)
        return lb, ub

    def _var_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self._var_lb.array, self._var_ub.array

    def _objective_vector(self) -> np.ndarray:
        """The signed objective vector (a live view; do not mutate)."""
        return self._obj_signed.array

    # ------------------------------------------------------------------
    # Warm-start cutoff (hidden persistent row)
    # ------------------------------------------------------------------
    def _ensure_cutoff_row(self) -> None:
        """Make the hidden cutoff row exist and match the objective."""
        signed = {
            index: coeff * self._sense
            for index, coeff in self._objective.coeffs.items()
        }
        if self._cutoff_coeffs != signed:
            self._cutoff_coeffs = signed
            self._invalidate()

    def _set_cutoff_ub(self, ub: float) -> None:
        if ub == self._cutoff_ub:
            return
        self._cutoff_ub = ub
        self._cutoff_dirty = True
        self._mark_solution_stale()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def optimize(
        self,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        relax: bool = False,
        warm_start: "dict[Variable, float] | None" = None,
        cutoff_tolerance: float = 1e-6,
        node_limit: int | None = None,
        iteration_limit: int | None = None,
    ) -> Status:
        """Solve the model and return a :class:`Status`.

        Parameters
        ----------
        time_limit:
            Wall-clock budget in seconds, mapped to HiGHS.  When the
            budget (or a node/iteration limit) is exhausted *without an
            incumbent solution*, the solve raises
            :class:`~repro.errors.SolverTimeoutError` -- callers with a
            fallback plan catch it and degrade; a budgeted MILP that
            found an incumbent returns :data:`Status.TIME_LIMIT` with
            the incumbent installed instead.
        mip_gap:
            Relative MIP gap at which to stop (MILP only).
        relax:
            Solve the LP relaxation, ignoring integrality.
        warm_start:
            Emulated MIP start: the hint's objective value (plus
            ``cutoff_tolerance``) becomes the RHS of a persistent
            objective-cutoff row, which prunes branch-and-bound the way
            an incumbent would.  The hint itself is not installed as a
            solution, so an infeasible hint merely makes the cutoff
            loose/void rather than corrupting the solve.  The row stays
            in the compiled matrix with RHS ``+inf`` between
            warm-started solves, so repeated warm starts never discard
            the compiled matrix.
        node_limit:
            Branch-and-bound node budget (MILP only), mapped to HiGHS.
        iteration_limit:
            Simplex iteration budget (LP only), mapped to HiGHS.
        """
        if not self.variables:
            raise SolverError("cannot optimize a model with no variables")
        if faults.fires("solver.timeout", key=self.name):
            # Deterministic stand-in for a budget-exhausted solve: no
            # incumbent, typed error, model left in TIME_LIMIT state.
            self._mark_solution_stale()
            self._status = Status.TIME_LIMIT
            self._solve_count += 1
            telemetry.counter("solver.injected_timeouts")
            raise SolverTimeoutError(
                f"injected solver timeout for model {self.name!r}"
            )
        use_milp = not relax and self.num_integer_variables > 0
        start = time.perf_counter()

        if warm_start is not None and use_milp:
            hint_values = np.zeros(len(self.variables))
            for var, value in warm_start.items():
                hint_values[var.index] = value
            hint_objective = float(self._objective_vector() @ hint_values)
            self._ensure_cutoff_row()
            self._set_cutoff_ub(hint_objective + cutoff_tolerance)
        elif self._cutoff_coeffs is not None:
            self._set_cutoff_ub(_INF)

        if use_milp:
            status = self._solve_milp(time_limit, mip_gap, node_limit)
        else:
            status = self._solve_lp(time_limit, iteration_limit)
        self._solve_time = time.perf_counter() - start
        self._solve_count += 1
        self._status = status
        if telemetry.enabled():
            backend = "milp" if use_milp else "lp"
            telemetry.counter(f"solver.{backend}_solves")
            telemetry.observe(f"solver.{backend}_solve", self._solve_time)
            telemetry.event(
                "solver.solve",
                model=self.name,
                backend=backend,
                status=status.value,
                solve_time=self._solve_time,
                num_variables=self.num_variables,
                num_constraints=self.num_constraints,
                warm_start=warm_start is not None,
            )
        if status is Status.TIME_LIMIT and self._solution is None:
            raise SolverTimeoutError(
                f"model {self.name!r} exhausted its solve budget "
                f"(time_limit={time_limit}, node_limit={node_limit}, "
                f"iteration_limit={iteration_limit}) with no incumbent"
            )
        return status

    def _lp_matrices(self, row_lb: np.ndarray, row_ub: np.ndarray):
        """Split A into equality/inequality blocks; cache across RHS updates.

        The split depends only on which row bounds are finite/equal.  RHS
        updates in the evaluator keep those patterns stable, so the
        sliced sparse matrices are reused and only the b vectors are
        rebuilt per solve.
        """
        matrix = self._compiled_matrix()
        eq_mask = np.isclose(row_lb, row_ub) & np.isfinite(row_lb)
        ub_mask = np.isfinite(row_ub) & ~eq_mask
        lb_mask = np.isfinite(row_lb) & ~eq_mask
        if self._lp_split is not None:
            cached_eq, cached_ub, cached_lb, a_eq, a_ub = self._lp_split
            if (
                np.array_equal(cached_eq, eq_mask)
                and np.array_equal(cached_ub, ub_mask)
                and np.array_equal(cached_lb, lb_mask)
            ):
                return eq_mask, ub_mask, lb_mask, a_eq, a_ub
        a_eq = matrix[eq_mask] if eq_mask.any() else None
        a_ub_parts = []
        if ub_mask.any():
            a_ub_parts.append(matrix[ub_mask])
        if lb_mask.any():
            a_ub_parts.append(-matrix[lb_mask])
        a_ub = sp.vstack(a_ub_parts, format="csr") if a_ub_parts else None
        self._lp_split = (eq_mask, ub_mask, lb_mask, a_eq, a_ub)
        return eq_mask, ub_mask, lb_mask, a_eq, a_ub

    def _solve_lp(
        self, time_limit: float | None, iteration_limit: int | None = None
    ) -> Status:
        budgeted = time_limit is not None or iteration_limit is not None
        if (
            _highs_core is None
            or budgeted
            or self.lp_backend != "persistent"
        ):
            # Budgeted solves keep linprog's maxiter/time-limit
            # semantics (a zero budget must report TIME_LIMIT, not let
            # presolve finish the solve).
            return self._solve_lp_linprog(time_limit, iteration_limit)
        try:
            return self._solve_lp_persistent()
        except _PersistentLPError:
            telemetry.counter("solver.persistent_fallbacks")
            self._persistent = None
            return self._solve_lp_linprog(time_limit, iteration_limit)

    def _solve_lp_persistent(self) -> Status:
        """Solve on the hot HiGHS instance, pushing only dirty bounds."""
        persistent = self._persistent
        if persistent is None or self._matrix is None:
            matrix = self._compiled_matrix()
            row_lb, row_ub = self._row_bounds()
            var_lb, var_ub = self._var_bounds()
            persistent = _PersistentLP(
                matrix, row_lb, row_ub, var_lb, var_ub, self._objective_vector()
            )
            self._persistent = persistent
            self._dirty_rows.clear()
            self._dirty_cols.clear()
            self._objective_dirty = False
            self._cutoff_dirty = False
        else:
            if self._dirty_rows:
                indices = sorted(self._dirty_rows)
                persistent.update_rows(
                    indices,
                    self._row_lb.array[indices],
                    self._row_ub.array[indices],
                )
                self._dirty_rows.clear()
            if self._dirty_cols:
                indices = sorted(self._dirty_cols)
                persistent.update_cols(
                    indices,
                    self._var_lb.array[indices],
                    self._var_ub.array[indices],
                )
                self._dirty_cols.clear()
            if self._objective_dirty:
                persistent.update_cost(self._objective_vector())
            if self._cutoff_dirty and self._cutoff_coeffs is not None:
                persistent.update_rows(
                    [len(self.constraints)], [-_INF], [self._cutoff_ub]
                )
            if persistent.solve_count:
                telemetry.counter("solver.persistent_resolves")
        self._objective_dirty = False
        self._cutoff_dirty = False
        status, objective, solution = persistent.solve()
        if status is Status.OPTIMAL:
            self._solution = solution
            self._objective_value = objective * self._sense
        return status

    def _solve_lp_linprog(
        self, time_limit: float | None, iteration_limit: int | None = None
    ) -> Status:
        row_lb, row_ub = self._row_bounds()
        var_lb, var_ub = self._var_bounds()
        eq_mask, ub_mask, lb_mask, a_eq, a_ub = self._lp_matrices(row_lb, row_ub)
        b_eq = row_ub[eq_mask] if eq_mask.any() else None
        b_ub_parts = []
        if ub_mask.any():
            b_ub_parts.append(row_ub[ub_mask])
        if lb_mask.any():
            b_ub_parts.append(-row_lb[lb_mask])
        b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None

        options = {"presolve": True}
        if time_limit is not None:
            options["time_limit"] = time_limit
        if iteration_limit is not None:
            options["maxiter"] = int(iteration_limit)
        result = linprog(
            self._objective_vector(),
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=np.column_stack([var_lb, var_ub]),
            method="highs",
            options=options,
        )
        if result.status == 0:
            self._solution = np.asarray(result.x)
            self._objective_value = float(result.fun) * self._sense
            return Status.OPTIMAL
        if result.status == 1:
            return Status.TIME_LIMIT
        if result.status == 2:
            return Status.INFEASIBLE
        if result.status == 3:
            return Status.UNBOUNDED
        return Status.ERROR

    def _solve_milp(
        self,
        time_limit: float | None,
        mip_gap: float | None,
        node_limit: int | None = None,
    ) -> Status:
        matrix = self._compiled_matrix()
        row_lb, row_ub = self._row_bounds()
        var_lb, var_ub = self._var_bounds()
        integrality = self._integrality.array
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = time_limit
        if mip_gap is not None:
            options["mip_rel_gap"] = mip_gap
        if node_limit is not None:
            options["node_limit"] = int(node_limit)
        constraints = (
            LinearConstraint(matrix, row_lb, row_ub) if matrix.shape[0] else None
        )
        result = milp(
            self._objective_vector(),
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(var_lb, var_ub),
            options=options,
        )
        if result.status == 0:
            self._solution = np.asarray(result.x)
            self._objective_value = float(result.fun) * self._sense
            return Status.OPTIMAL
        if result.status == 1:
            # Iteration/time limit; HiGHS may still return an incumbent.
            if result.x is not None:
                self._solution = np.asarray(result.x)
                self._objective_value = float(result.fun) * self._sense
            return Status.TIME_LIMIT
        if result.status == 2:
            return Status.INFEASIBLE
        if result.status == 3:
            return Status.UNBOUNDED
        return Status.ERROR

    # ------------------------------------------------------------------
    # Solution access
    # ------------------------------------------------------------------
    @property
    def status(self) -> Status:
        return self._status

    @property
    def has_incumbent(self) -> bool:
        return self._solution is not None

    @property
    def objective_value(self) -> float:
        if self._objective_value is None:
            raise SolverError("no solution available; call optimize() first")
        return self._objective_value + self._objective.constant

    @property
    def solve_time(self) -> float:
        """Wall-clock seconds spent in the last optimize call."""
        return self._solve_time

    @property
    def solve_count(self) -> int:
        """Number of optimize calls on this model (for instrumentation)."""
        return self._solve_count

    def _value_of(self, var: Variable) -> float:
        if self._solution is None:
            raise SolverError("no solution available; call optimize() first")
        return float(self._solution[var.index])

    def _row_activity(self, constr: Constraint) -> float:
        if self._solution is None:
            raise SolverError("no solution available; call optimize() first")
        matrix = self._compiled_matrix()
        start, end = matrix.indptr[constr.index], matrix.indptr[constr.index + 1]
        columns = matrix.indices[start:end]
        return float(matrix.data[start:end] @ self._solution[columns])

    def values(self, variables: Sequence[Variable]) -> np.ndarray:
        """Vectorized solution access for a list of variables."""
        if self._solution is None:
            raise SolverError("no solution available; call optimize() first")
        return self._solution[[v.index for v in variables]]
