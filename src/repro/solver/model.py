"""The optimization model: variables, constraints, objective, optimize().

Compilation strategy
--------------------
Constraints are normalized to rows of a single sparse matrix ``A`` with
per-row bounds ``row_lb <= A x <= row_ub`` (equalities have
``row_lb == row_ub``).  The matrix is compiled lazily and cached;
*adding* variables or constraints invalidates the cache, while updating
variable bounds or a constraint's RHS does not.  That asymmetry is what
makes the plan evaluator's stateful failure checking cheap: toggling a
failure only rewrites bounds, and re-solving reuses the compiled matrix
(the paper's "only update the constraints that are influenced by the
failure" optimization).

Backends
--------
Pure-continuous models solve with ``scipy.optimize.linprog`` and models
with integer variables with ``scipy.optimize.milp``; both run HiGHS.
``optimize(relax=True)`` solves the LP relaxation of a MILP.  A
warm-start hint is emulated with an objective cutoff (see
:meth:`Model.optimize`).
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro import telemetry
from repro.errors import SolverError, SolverTimeoutError
from repro.resilience import faults
from repro.solver.expression import ConstraintSpec, LinExpr, Variable
from repro.solver.status import Status

_INF = math.inf


class Constraint:
    """A normalized row ``lb <= expr <= ub`` (without the constant term)."""

    __slots__ = ("index", "name", "coeffs", "lb", "ub", "_model")

    def __init__(self, index, name, coeffs, lb, ub, model):
        self.index = index
        self.name = name
        self.coeffs = coeffs  # dict var_index -> coefficient
        self.lb = lb
        self.ub = ub
        self._model = model

    def set_rhs(self, lb: float | None = None, ub: float | None = None) -> None:
        """Update the row bounds without recompiling the matrix."""
        if lb is not None:
            self.lb = float(lb)
        if ub is not None:
            self.ub = float(ub)
        if self.lb > self.ub + 1e-12:
            raise SolverError(f"constraint {self.name}: lb exceeds ub")
        self._model._mark_solution_stale()

    @property
    def slack(self) -> float:
        """ub - activity at the current solution (inf if ub is inf)."""
        activity = self._model._row_activity(self)
        return self.ub - activity

    @property
    def activity(self) -> float:
        """Row value at the current solution."""
        return self._model._row_activity(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constraint({self.name}, [{self.lb}, {self.ub}])"


class Model:
    """An LP/MILP model with a Gurobi-like API.

    Example::

        m = Model("diet")
        x = m.add_var(lb=0, name="x")
        y = m.add_var(lb=0, vtype=Variable.INTEGER, name="y")
        m.add_constr(x + 2 * y >= 3)
        m.set_objective(x + y)
        status = m.optimize()
        assert status is Status.OPTIMAL
        print(m.objective_value, x.x, y.x)
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective = LinExpr()
        self._sense = 1  # 1 = minimize, -1 = maximize
        self._matrix: sp.csr_matrix | None = None
        self._lp_split: tuple | None = None
        self._solution: np.ndarray | None = None
        self._objective_value: float | None = None
        self._status = Status.NOT_SOLVED
        self._solve_time = 0.0
        self._solve_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_var(
        self,
        lb: float = 0.0,
        ub: float = _INF,
        vtype: str = Variable.CONTINUOUS,
        name: str | None = None,
    ) -> Variable:
        """Create a decision variable."""
        if vtype not in (Variable.CONTINUOUS, Variable.INTEGER, Variable.BINARY):
            raise SolverError(f"unknown vtype {vtype!r}")
        if vtype == Variable.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise SolverError(f"variable lb {lb} exceeds ub {ub}")
        index = len(self.variables)
        var = Variable(index, name or f"x{index}", lb, ub, vtype, self)
        self.variables.append(var)
        self._invalidate()
        return var

    def add_vars(
        self,
        count: int,
        lb: float = 0.0,
        ub: float = _INF,
        vtype: str = Variable.CONTINUOUS,
        prefix: str = "x",
    ) -> list[Variable]:
        """Create ``count`` homogeneous variables."""
        return [
            self.add_var(lb=lb, ub=ub, vtype=vtype, name=f"{prefix}{i}")
            for i in range(count)
        ]

    def add_constr(self, spec: ConstraintSpec, name: str | None = None) -> Constraint:
        """Add a constraint built from a comparison, e.g. ``x + y <= 3``."""
        if not isinstance(spec, ConstraintSpec):
            raise SolverError(
                "add_constr expects a comparison like `expr <= rhs`, got "
                f"{type(spec).__name__}"
            )
        rhs = -spec.expr.constant
        coeffs = {i: c for i, c in spec.expr.coeffs.items() if c != 0.0}
        if spec.sense == "<=":
            lb, ub = -_INF, rhs
        elif spec.sense == ">=":
            lb, ub = rhs, _INF
        else:
            lb = ub = rhs
        index = len(self.constraints)
        constr = Constraint(index, name or f"c{index}", coeffs, lb, ub, self)
        self.constraints.append(constr)
        self._invalidate()
        return constr

    def set_objective(self, expr: "LinExpr | Variable", sense: str = "min") -> None:
        """Set the (linear) objective; ``sense`` is ``"min"`` or ``"max"``."""
        expr = LinExpr._coerce(expr)
        if sense not in ("min", "max"):
            raise SolverError("sense must be 'min' or 'max'")
        self._objective = expr
        self._sense = 1 if sense == "min" else -1
        self._mark_solution_stale()

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables if v.vtype != Variable.CONTINUOUS)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        if self._matrix is not None:
            # Only a *compiled* matrix being thrown away is a cache
            # invalidation worth counting; invalidating an un-compiled
            # model (during construction) is free.
            telemetry.counter("solver.cache_invalidations")
        self._matrix = None
        self._lp_split = None
        self._mark_solution_stale()

    def _mark_solution_stale(self) -> None:
        self._solution = None
        self._objective_value = None
        self._status = Status.NOT_SOLVED

    def _compiled_matrix(self) -> sp.csr_matrix:
        if self._matrix is None:
            rows, cols, data = [], [], []
            for constr in self.constraints:
                for var_index, coeff in constr.coeffs.items():
                    rows.append(constr.index)
                    cols.append(var_index)
                    data.append(coeff)
            self._matrix = sp.csr_matrix(
                (data, (rows, cols)),
                shape=(len(self.constraints), len(self.variables)),
            )
        return self._matrix

    def _row_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lb = np.array([c.lb for c in self.constraints])
        ub = np.array([c.ub for c in self.constraints])
        return lb, ub

    def _var_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        return lb, ub

    def _objective_vector(self) -> np.ndarray:
        c = np.zeros(len(self.variables))
        for index, coeff in self._objective.coeffs.items():
            c[index] = coeff
        return c * self._sense

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def optimize(
        self,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        relax: bool = False,
        warm_start: "dict[Variable, float] | None" = None,
        cutoff_tolerance: float = 1e-6,
        node_limit: int | None = None,
        iteration_limit: int | None = None,
    ) -> Status:
        """Solve the model and return a :class:`Status`.

        Parameters
        ----------
        time_limit:
            Wall-clock budget in seconds, mapped to HiGHS.  When the
            budget (or a node/iteration limit) is exhausted *without an
            incumbent solution*, the solve raises
            :class:`~repro.errors.SolverTimeoutError` -- callers with a
            fallback plan catch it and degrade; a budgeted MILP that
            found an incumbent returns :data:`Status.TIME_LIMIT` with
            the incumbent installed instead.
        mip_gap:
            Relative MIP gap at which to stop (MILP only).
        relax:
            Solve the LP relaxation, ignoring integrality.
        warm_start:
            Emulated MIP start: the hint's objective value (plus
            ``cutoff_tolerance``) becomes a temporary objective cutoff
            constraint, which prunes branch-and-bound the way an
            incumbent would.  The hint itself is not installed as a
            solution, so an infeasible hint merely makes the cutoff
            loose/void rather than corrupting the solve.
        node_limit:
            Branch-and-bound node budget (MILP only), mapped to HiGHS.
        iteration_limit:
            Simplex iteration budget (LP only), mapped to HiGHS.
        """
        if not self.variables:
            raise SolverError("cannot optimize a model with no variables")
        if faults.fires("solver.timeout", key=self.name):
            # Deterministic stand-in for a budget-exhausted solve: no
            # incumbent, typed error, model left in TIME_LIMIT state.
            self._mark_solution_stale()
            self._status = Status.TIME_LIMIT
            self._solve_count += 1
            telemetry.counter("solver.injected_timeouts")
            raise SolverTimeoutError(
                f"injected solver timeout for model {self.name!r}"
            )
        use_milp = not relax and self.num_integer_variables > 0
        start = time.perf_counter()

        cutoff_constraint: Constraint | None = None
        if warm_start is not None and use_milp:
            hint_values = np.zeros(len(self.variables))
            for var, value in warm_start.items():
                hint_values[var.index] = value
            hint_objective = float(self._objective_vector() @ hint_values)
            signed_objective = LinExpr(dict(self._objective.coeffs), 0.0) * self._sense
            cutoff_constraint = self.add_constr(
                signed_objective <= hint_objective + cutoff_tolerance,
                name="_warm_start_cutoff",
            )

        try:
            if use_milp:
                status = self._solve_milp(time_limit, mip_gap, node_limit)
            else:
                status = self._solve_lp(time_limit, iteration_limit)
        finally:
            if cutoff_constraint is not None:
                removed = self.constraints.pop()
                assert removed is cutoff_constraint
                self._matrix = None
        self._solve_time = time.perf_counter() - start
        self._solve_count += 1
        self._status = status
        if telemetry.enabled():
            backend = "milp" if use_milp else "lp"
            telemetry.counter(f"solver.{backend}_solves")
            telemetry.observe(f"solver.{backend}_solve", self._solve_time)
            telemetry.event(
                "solver.solve",
                model=self.name,
                backend=backend,
                status=status.value,
                solve_time=self._solve_time,
                num_variables=self.num_variables,
                num_constraints=self.num_constraints,
                warm_start=warm_start is not None,
            )
        if status is Status.TIME_LIMIT and self._solution is None:
            raise SolverTimeoutError(
                f"model {self.name!r} exhausted its solve budget "
                f"(time_limit={time_limit}, node_limit={node_limit}, "
                f"iteration_limit={iteration_limit}) with no incumbent"
            )
        return status

    def _lp_matrices(self, row_lb: np.ndarray, row_ub: np.ndarray):
        """Split A into equality/inequality blocks; cache across RHS updates.

        The split depends only on which row bounds are finite/equal.  RHS
        updates in the evaluator keep those patterns stable, so the
        sliced sparse matrices are reused and only the b vectors are
        rebuilt per solve.
        """
        matrix = self._compiled_matrix()
        eq_mask = np.isclose(row_lb, row_ub) & np.isfinite(row_lb)
        ub_mask = np.isfinite(row_ub) & ~eq_mask
        lb_mask = np.isfinite(row_lb) & ~eq_mask
        if self._lp_split is not None:
            cached_eq, cached_ub, cached_lb, a_eq, a_ub = self._lp_split
            if (
                np.array_equal(cached_eq, eq_mask)
                and np.array_equal(cached_ub, ub_mask)
                and np.array_equal(cached_lb, lb_mask)
            ):
                return eq_mask, ub_mask, lb_mask, a_eq, a_ub
        a_eq = matrix[eq_mask] if eq_mask.any() else None
        a_ub_parts = []
        if ub_mask.any():
            a_ub_parts.append(matrix[ub_mask])
        if lb_mask.any():
            a_ub_parts.append(-matrix[lb_mask])
        a_ub = sp.vstack(a_ub_parts, format="csr") if a_ub_parts else None
        self._lp_split = (eq_mask, ub_mask, lb_mask, a_eq, a_ub)
        return eq_mask, ub_mask, lb_mask, a_eq, a_ub

    def _solve_lp(
        self, time_limit: float | None, iteration_limit: int | None = None
    ) -> Status:
        row_lb, row_ub = self._row_bounds()
        var_lb, var_ub = self._var_bounds()
        eq_mask, ub_mask, lb_mask, a_eq, a_ub = self._lp_matrices(row_lb, row_ub)
        b_eq = row_ub[eq_mask] if eq_mask.any() else None
        b_ub_parts = []
        if ub_mask.any():
            b_ub_parts.append(row_ub[ub_mask])
        if lb_mask.any():
            b_ub_parts.append(-row_lb[lb_mask])
        b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None

        options = {"presolve": True}
        if time_limit is not None:
            options["time_limit"] = time_limit
        if iteration_limit is not None:
            options["maxiter"] = int(iteration_limit)
        result = linprog(
            self._objective_vector(),
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=np.column_stack([var_lb, var_ub]),
            method="highs",
            options=options,
        )
        if result.status == 0:
            self._solution = np.asarray(result.x)
            self._objective_value = float(result.fun) * self._sense
            return Status.OPTIMAL
        if result.status == 1:
            return Status.TIME_LIMIT
        if result.status == 2:
            return Status.INFEASIBLE
        if result.status == 3:
            return Status.UNBOUNDED
        return Status.ERROR

    def _solve_milp(
        self,
        time_limit: float | None,
        mip_gap: float | None,
        node_limit: int | None = None,
    ) -> Status:
        matrix = self._compiled_matrix()
        row_lb, row_ub = self._row_bounds()
        var_lb, var_ub = self._var_bounds()
        integrality = np.array(
            [0 if v.vtype == Variable.CONTINUOUS else 1 for v in self.variables]
        )
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = time_limit
        if mip_gap is not None:
            options["mip_rel_gap"] = mip_gap
        if node_limit is not None:
            options["node_limit"] = int(node_limit)
        constraints = (
            LinearConstraint(matrix, row_lb, row_ub) if self.constraints else None
        )
        result = milp(
            self._objective_vector(),
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(var_lb, var_ub),
            options=options,
        )
        if result.status == 0:
            self._solution = np.asarray(result.x)
            self._objective_value = float(result.fun) * self._sense
            return Status.OPTIMAL
        if result.status == 1:
            # Iteration/time limit; HiGHS may still return an incumbent.
            if result.x is not None:
                self._solution = np.asarray(result.x)
                self._objective_value = float(result.fun) * self._sense
            return Status.TIME_LIMIT
        if result.status == 2:
            return Status.INFEASIBLE
        if result.status == 3:
            return Status.UNBOUNDED
        return Status.ERROR

    # ------------------------------------------------------------------
    # Solution access
    # ------------------------------------------------------------------
    @property
    def status(self) -> Status:
        return self._status

    @property
    def has_incumbent(self) -> bool:
        return self._solution is not None

    @property
    def objective_value(self) -> float:
        if self._objective_value is None:
            raise SolverError("no solution available; call optimize() first")
        return self._objective_value + self._objective.constant

    @property
    def solve_time(self) -> float:
        """Wall-clock seconds spent in the last optimize call."""
        return self._solve_time

    @property
    def solve_count(self) -> int:
        """Number of optimize calls on this model (for instrumentation)."""
        return self._solve_count

    def _value_of(self, var: Variable) -> float:
        if self._solution is None:
            raise SolverError("no solution available; call optimize() first")
        return float(self._solution[var.index])

    def _row_activity(self, constr: Constraint) -> float:
        if self._solution is None:
            raise SolverError("no solution available; call optimize() first")
        return sum(
            coeff * self._solution[idx] for idx, coeff in constr.coeffs.items()
        )

    def values(self, variables: Sequence[Variable]) -> np.ndarray:
        """Vectorized solution access for a list of variables."""
        if self._solution is None:
            raise SolverError("no solution available; call optimize() first")
        return self._solution[[v.index for v in variables]]
