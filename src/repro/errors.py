"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SolverError(ReproError):
    """The LP/ILP solver failed or was used incorrectly."""


class InfeasibleError(SolverError):
    """A model was proven infeasible when a solution was required."""


class UnboundedError(SolverError):
    """A model was proven unbounded."""


class TopologyError(ReproError):
    """The network topology is malformed or an element lookup failed."""


class TrafficError(ReproError):
    """The traffic specification is malformed."""


class PlanError(ReproError):
    """A network plan is malformed or inconsistent with its topology."""


class EnvironmentError_(ReproError):
    """The RL environment was driven incorrectly (e.g. step after done)."""


class NNError(ReproError):
    """The neural-network substrate was used incorrectly."""


class ConfigError(ReproError):
    """Invalid configuration or hyperparameters."""
