"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SolverError(ReproError):
    """The LP/ILP solver failed or was used incorrectly."""


class SolverTimeoutError(SolverError):
    """A solve exhausted its wall-clock/node/iteration budget with no
    incumbent solution to fall back to.

    Planners catch this and degrade gracefully (greedy or first-stage
    fallback) instead of aborting a long run.
    """


class InfeasibleError(SolverError):
    """A model was proven infeasible when a solution was required."""


class UnboundedError(SolverError):
    """A model was proven unbounded."""


class TopologyError(ReproError):
    """The network topology is malformed or an element lookup failed."""


class TrafficError(ReproError):
    """The traffic specification is malformed."""


class PlanError(ReproError):
    """A network plan is malformed or inconsistent with its topology."""


class EnvironmentError_(ReproError):
    """The RL environment was driven incorrectly (e.g. step after done)."""


class NNError(ReproError):
    """The neural-network substrate was used incorrectly."""


class ConfigError(ReproError):
    """Invalid configuration or hyperparameters."""


class CheckpointError(ReproError):
    """A training checkpoint could not be written, read, or verified
    (missing file, truncated archive, checksum mismatch, wrong version)."""


class InjectedFault(ReproError):
    """A deliberate failure raised by the fault-injection harness
    (:mod:`repro.resilience.faults`); never raised in normal operation."""


class ServeError(ReproError):
    """Base class for planning-as-a-service errors (:mod:`repro.serve`)."""


class ModelNotFoundError(ServeError):
    """The model store has no entry for the requested key or version."""


class ModelMismatchError(ServeError):
    """A stored model's architecture metadata is incompatible with the
    requesting instance (wrong feature dim, action width, or key)."""


class Overloaded(ServeError):
    """The serving queue is full (or draining); the request was rejected
    immediately instead of buffering without bound."""


class ScenarioError(ReproError):
    """Base class for benchmark-scenario errors (:mod:`repro.scenarios`).

    The scenario zoo's standalone verifiers raise only this family, so a
    harness driving arbitrary planners against arbitrary scenarios can
    separate "the scenario input is bad" from "the plan is bad" from
    ordinary planner failures.
    """


class UnknownScenarioError(ScenarioError):
    """No scenario is registered under the requested name."""


class MalformedInstanceError(ScenarioError, TopologyError):
    """A planning instance (or its serialized form) is structurally
    invalid: broken fiber paths, unreachable flows, unknown failure
    references, spectrum violated at the starting capacities, or an
    unparseable on-disk document.

    Subclasses :class:`TopologyError` so existing callers that catch the
    topology family keep working.
    """


class PlanVerificationError(ScenarioError, PlanError):
    """A candidate plan document is unreadable or inconsistent with the
    scenario it claims to solve (not merely infeasible -- infeasibility
    is a verifier *verdict*, reported, not raised).

    Subclasses :class:`PlanError` so existing callers that catch the
    plan family keep working.
    """


class DeadlineExceeded(ServeError):
    """A request's end-to-end deadline expired (queue wait counts)
    before a response could be produced."""


class ReplicaUnavailable(ServeError):
    """A serving replica died (or its dispatch channel broke) while a
    request was in flight and no retry was possible.

    The dispatcher retries idempotent plan requests on another replica
    transparently; this error surfaces only when every retry budget --
    attempts, deadline, healthy replicas -- is exhausted."""


class ReplanError(ServeError):
    """An incremental replan request could not be applied: the drift
    spec is malformed, names unknown flows, or the supplied prior plan
    is structurally inconsistent with the target instance (unknown
    links, capacities below the originals, or off-unit values)."""
