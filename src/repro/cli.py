"""Command-line interface: ``neuroplan <command>``.

Commands
--------
``info``      -- describe a topology band (sizes, demand, failures).
``plan``      -- run the two-stage NeuroPlan pipeline on a topology.
``baseline``  -- run ILP / ILP-heur / greedy on a topology.
``table2``    -- print the paper's hyperparameter table.
``serve``     -- answer plan requests over HTTP from a model store.
``scenarios`` -- the scenario zoo: list entries, verify plan files
with the standalone verifier, record baselines.
"""

from __future__ import annotations

import argparse
import sys

from repro import telemetry
from repro.core.neuroplan import NeuroPlan, NeuroPlanConfig
from repro.core.presets import table2_rows
from repro.core.report import interpretability_report
from repro.topology import generators
from repro.topology.io import save_instance
from repro.version import __version__


def _add_profile_arg(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Telemetry trace flag, accepted before or after the subcommand.

    The subparser copies use ``SUPPRESS`` so an unused flag does not
    clobber a value parsed by the top-level parser (``experiment`` keeps
    its own, unrelated ``--profile`` choosing the experiment budget).
    """
    parser.add_argument(
        "--profile",
        dest="telemetry_profile",
        metavar="PATH.jsonl",
        default=None if top_level else argparse.SUPPRESS,
        help="enable telemetry and write a JSONL trace to this path",
    )


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", default="A", choices=generators.list_topologies(),
        help="topology band (A-E)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink the band proportionally (0 < scale <= 1)",
    )
    parser.add_argument(
        "--horizon", default="short", choices=("short", "long"),
        help="short-term (existing links) or long-term (candidates)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="neuroplan",
        description="NeuroPlan reproduction: network planning with deep RL",
    )
    parser.add_argument(
        "--version", action="version", version=f"neuroplan {__version__}"
    )
    _add_profile_arg(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a topology band")
    _add_instance_args(info)
    info.add_argument("--save", help="also write the instance JSON here")

    plan = sub.add_parser("plan", help="run the two-stage NeuroPlan pipeline")
    _add_instance_args(plan)
    _add_profile_arg(plan, top_level=False)
    plan.add_argument("--epochs", type=int, default=32)
    plan.add_argument("--steps-per-epoch", type=int, default=1024)
    plan.add_argument(
        "--workers", type=int, default=1,
        help="rollout-collection worker processes (1 = serial, "
        "byte-identical to the single-process trainer)",
    )
    plan.add_argument(
        "--num-envs", type=int, default=1,
        help="lockstep environments per rollout group (>1 batches the "
        "policy forward over all of them; composes with --workers)",
    )
    plan.add_argument("--alpha", type=float, default=1.5, help="relax factor")
    plan.add_argument("--max-units", type=int, default=4)
    plan.add_argument("--gnn-layers", type=int, default=2)
    plan.add_argument("--ilp-time-limit", type=float, default=600.0)
    plan.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the second-stage solve; overrides "
        "--ilp-time-limit (the run degrades to the RL plan on timeout)",
    )
    plan.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for resume checkpoints (ckpt-NNNNN.npz)",
    )
    plan.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write a resume checkpoint every N training epochs "
        "(requires --checkpoint-dir)",
    )
    plan.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume training from a checkpoint file, or from the "
        "newest valid checkpoint in a directory",
    )
    plan.add_argument("--report", action="store_true",
                      help="print the interpretability report")
    plan.add_argument(
        "--checkpoint-out", default=None, metavar="MODEL_DIR",
        help="publish the trained stage-1 policy into this serving "
        "model store (see `neuroplan serve --model-dir`)",
    )

    baseline = sub.add_parser("baseline", help="run a baseline planner")
    _add_instance_args(baseline)
    baseline.add_argument(
        "--method", default="ilp-heur", choices=("ilp", "ilp-heur", "greedy")
    )
    baseline.add_argument("--time-limit", type=float, default=600.0)
    _add_profile_arg(baseline, top_level=False)

    sub.add_parser("table2", help="print the Table 2 hyperparameters")

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure",
        choices=["fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"],
    )
    experiment.add_argument(
        "--profile", default="quick", choices=("quick", "standard", "full")
    )

    render = sub.add_parser("render", help="render a topology to SVG")
    _add_instance_args(render)
    render.add_argument("--output", default="topology.svg")

    compare = sub.add_parser(
        "compare", help="compare baseline planners side by side"
    )
    _add_instance_args(compare)
    compare.add_argument(
        "--methods",
        nargs="+",
        default=["greedy", "ilp-heur"],
        choices=("greedy", "ilp-heur", "ilp", "decomposition", "tunnel"),
    )
    compare.add_argument("--time-limit", type=float, default=120.0)
    _add_profile_arg(compare, top_level=False)

    serve = sub.add_parser(
        "serve", help="serve plans over HTTP from a trained model store"
    )
    serve.add_argument(
        "--model-dir", required=True, metavar="DIR",
        help="model store written by `neuroplan plan --checkpoint-out`",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--serve-workers", type=int, default=2,
        help="worker threads executing plan requests",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="request queue depth; a full queue rejects with HTTP 429",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU response cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--ilp-time-limit", type=float, default=30.0,
        help="per-request cap on the second-stage ILP budget (seconds)",
    )
    serve.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="serve from N crash-only worker processes behind a "
        "supervisor + dispatcher (0 = single-process, the default)",
    )
    serve.add_argument(
        "--shed-policy", default="default", metavar="SPEC",
        help="replicated-mode load shedding: 'off', 'default', or three "
        "load thresholds 'CACHE_ONLY,SKIP_ILP,REJECT' as fractions of "
        "capacity (e.g. '0.5,0.75,0.95')",
    )
    serve.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="replicated-mode tail-latency hedging: duplicate a request "
        "to a second replica after this long (default: off)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2,
        help="replicated-mode retry budget when a replica dies "
        "mid-request",
    )
    serve.add_argument(
        "--pipeline", choices=("pool", "farm"), default="pool",
        help="execution pipeline: 'pool' (classic worker pool) or "
        "'farm' (staged solver-farm pipeline with leased warm LP "
        "backends and a solver-layer cache); POST /v1/replan works "
        "under both",
    )
    serve.add_argument(
        "--farm-backends", type=int, default=None, metavar="K",
        help="solver-farm pool capacity per model signature "
        "(default: the farm's built-in default)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="max wait for co-batchable rollout steps before a "
        "coalesced forward runs with whatever is pending (plans stay "
        "bitwise identical to serial execution)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, metavar="M",
        help="max concurrent rollout steps stacked into one batched "
        "GNN forward (1 disables cross-request batching)",
    )
    _add_profile_arg(serve, top_level=False)

    scenarios = sub.add_parser(
        "scenarios",
        help="the scenario zoo: list, verify a plan file, run baselines",
    )
    zoo_sub = scenarios.add_subparsers(dest="zoo_command", required=True)
    zoo_sub.add_parser("list", help="list registered scenarios")
    zoo_verify = zoo_sub.add_parser(
        "verify",
        help="score a plan JSON with the standalone verifier "
        "(exit 1 if infeasible)",
    )
    zoo_verify.add_argument("scenario", help="registered scenario name")
    zoo_verify.add_argument(
        "--plan", required=True, metavar="PLAN.json",
        help="plan document written by `scenarios baseline --save-plans`",
    )
    zoo_verify.add_argument("--seed", type=int, default=0)
    zoo_baseline = zoo_sub.add_parser(
        "baseline", help="run baseline planners and verify every plan"
    )
    zoo_baseline.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="restrict to this scenario (repeatable; default: all)",
    )
    zoo_baseline.add_argument("--seed", type=int, default=None)
    zoo_baseline.add_argument(
        "--method", action="append", default=None,
        choices=("greedy", "ilp-heur", "ilp"),
        help="restrict to this planner (repeatable; default: all)",
    )
    zoo_baseline.add_argument(
        "--save-plans", default=None, metavar="DIR",
        help="also write each plan as DIR/<scenario>-<method>-<seed>.json",
    )
    return parser


def _make_instance(args):
    return generators.make_instance(
        args.topology, seed=args.seed, scale=args.scale, horizon=args.horizon
    )


def _cmd_info(args) -> int:
    instance = _make_instance(args)
    print(instance.describe())
    if args.save:
        save_instance(instance, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_plan(args) -> int:
    instance = _make_instance(args)
    print(instance.describe())
    config = NeuroPlanConfig(
        relax_factor=args.alpha,
        epochs=args.epochs,
        steps_per_epoch=args.steps_per_epoch,
        max_trajectory_length=args.steps_per_epoch,
        max_units_per_step=args.max_units,
        gnn_layers=args.gnn_layers,
        ilp_time_limit=(
            args.time_budget if args.time_budget is not None
            else args.ilp_time_limit
        ),
        seed=args.seed,
        num_workers=args.workers,
        num_envs=args.num_envs,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume_from=args.resume,
    )
    planner = NeuroPlan(config)
    result = planner.plan(instance)
    print(result.summary())
    if args.checkpoint_out:
        record = _publish_model(planner, args)
        print(
            f"published model {record.key.dirname()} v{record.version} "
            f"-> {record.checkpoint_path}"
        )
    if args.report:
        print()
        print(interpretability_report(instance, result))
    return 0


def _publish_model(planner: NeuroPlan, args):
    """Publish the trained stage-1 policy into a serving model store."""
    from repro.serve.registry import ModelKey, ModelStore

    agent = planner.last_agent
    training = agent.training_result
    source = {"algo": "a2c", "epochs": args.epochs, "seed": args.seed}
    if training is not None:
        source["epoch"] = training.epochs_run
        if training.best_capacities is not None:
            source["best_cost"] = training.best_cost
    return ModelStore(args.checkpoint_out).publish(
        agent.policy,
        key=ModelKey(
            topology=args.topology, scale=args.scale, horizon=args.horizon
        ),
        agent_kwargs={
            "max_units_per_step": agent.config.max_units_per_step,
            "max_steps": agent.config.max_steps,
            "evaluator_mode": agent.config.evaluator_mode,
            "feature_set": agent.config.feature_set,
        },
        source=source,
    )


def _cmd_baseline(args) -> int:
    from repro.planning import GreedyPlanner, ILPHeurPlanner, ILPPlanner

    instance = _make_instance(args)
    print(instance.describe())
    if args.method == "greedy":
        plan = GreedyPlanner().plan(instance)
    elif args.method == "ilp":
        outcome = ILPPlanner(time_limit=args.time_limit).plan(instance)
        if outcome.plan is None:
            print(f"ILP hit the {args.time_limit}s limit with no incumbent")
            return 1
        plan = outcome.plan
    else:
        plan = ILPHeurPlanner().plan(instance).plan
    print(
        f"{plan.method}: cost {plan.cost(instance):,.0f} "
        f"(+{plan.total_added_gbps(instance):,.0f} Gbps) "
        f"in {plan.solve_seconds:.1f}s"
    )
    return 0


def _cmd_table2(_args) -> int:
    rows = table2_rows()
    width = max(len(name) for name, _ in rows)
    print(f"{'Hyperparameter':<{width}}  Value")
    print("-" * (width + 30))
    for name, value in rows:
        print(f"{name:<{width}}  {value}")
    return 0


def _cmd_experiment(args) -> int:
    from repro import experiments

    module = getattr(
        experiments,
        {
            "fig7": "fig7_efficiency",
            "fig8": "fig8_optimality",
            "fig9": "fig9_scalability",
            "fig10": "fig10_gnn_layers",
            "fig11": "fig11_mlp_hidden",
            "fig12": "fig12_capacity_units",
            "fig13": "fig13_relax_factor",
        }[args.figure],
    )
    rows = module.run(profile=args.profile, verbose=True)
    problems = module.expected_shape(rows)
    if problems:
        print("\nshape deviations from the paper:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nshape matches the paper's qualitative claims")
    return 0


def _cmd_render(args) -> int:
    from repro.topology.visualization import save_svg

    instance = _make_instance(args)
    save_svg(instance.network, args.output, title=instance.describe())
    print(f"wrote {args.output}")
    return 0


def _cmd_compare(args) -> int:
    from repro.core.compare import compare_plans
    from repro.planning import (
        DecompositionPlanner,
        GreedyPlanner,
        ILPHeurPlanner,
        ILPPlanner,
        TunnelPlanner,
    )

    instance = _make_instance(args)
    print(instance.describe())
    plans = []
    for method in args.methods:
        if method == "greedy":
            plans.append(GreedyPlanner().plan(instance))
        elif method == "ilp-heur":
            plans.append(ILPHeurPlanner().plan(instance).plan)
        elif method == "ilp":
            outcome = ILPPlanner(time_limit=args.time_limit).plan(instance)
            if outcome.plan is None:
                print(f"ilp: hit the {args.time_limit}s limit, skipped")
                continue
            plans.append(outcome.plan)
        elif method == "decomposition":
            plans.append(
                DecompositionPlanner(ilp_time_limit=args.time_limit).plan(instance)
            )
        else:
            plans.append(
                TunnelPlanner(time_limit=args.time_limit).plan(instance)
            )
    if len(plans) < 2:
        print("need at least two completed plans to compare")
        return 1
    print()
    print(compare_plans(instance, plans))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.http import run
    from repro.serve.service import PlanningService, ServiceConfig

    # /metrics is part of the serving API, so collection is always on
    # for a server process (a --profile path additionally gets a trace).
    if not telemetry.enabled():
        telemetry.enable()
    farm_overrides = {}
    if args.farm_backends is not None:
        farm_overrides["backends"] = args.farm_backends
    service_config = ServiceConfig(
        workers=args.serve_workers,
        queue_depth=args.queue_depth,
        cache_size=args.cache_size,
        ilp_time_limit=args.ilp_time_limit,
        pipeline=args.pipeline,
        farm=farm_overrides,
        batching=args.max_batch > 1,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
    )
    if args.replicas > 0:
        from repro.serve.dispatcher import (
            Dispatcher,
            DispatcherConfig,
            ShedPolicy,
        )
        from repro.serve.supervisor import Supervisor, SupervisorConfig

        supervisor = Supervisor(
            args.model_dir,
            service_config=service_config,
            config=SupervisorConfig(replicas=args.replicas),
        ).start()
        service = Dispatcher(
            supervisor,
            DispatcherConfig(
                max_retries=args.max_retries,
                hedge_after_s=args.hedge_after,
                shed_policy=ShedPolicy.parse(args.shed_policy),
            ),
        )
        print(
            f"model store {args.model_dir}: "
            f"{supervisor.healthy_count()}/{args.replicas} replicas healthy"
        )
    else:
        service = PlanningService(args.model_dir, service_config)
        keys = service.registry.store.keys()
        print(f"model store {args.model_dir}: {keys or 'EMPTY (publish first)'}")
    run(service, host=args.host, port=args.port)
    print("drained; bye")
    return 0


def _cmd_scenarios(args) -> int:
    import repro.scenarios as zoo

    if args.zoo_command == "list":
        for name in zoo.names():
            scenario = zoo.get(name)
            tags = ",".join(scenario.tags) or "-"
            print(
                f"{name:<16} seeds={list(scenario.seeds)} "
                f"methods={list(scenario.baseline_methods)} [{tags}]"
            )
            print(f"  {scenario.description}")
        return 0

    if args.zoo_command == "verify":
        from repro.planning.plan import NetworkPlan

        scenario = zoo.get(args.scenario)
        instance = scenario.build(args.seed)
        plan = NetworkPlan.load(args.plan)
        report = zoo.verify_plan(instance, plan.capacities, method=plan.method)
        print(report.summary())
        return 0 if report.feasible else 1

    # baseline
    import json
    import pathlib

    rows = zoo.baseline_table(
        scenario_names=args.scenario,
        seeds=None if args.seed is None else (args.seed,),
        methods=tuple(args.method) if args.method else None,
    )
    failures = 0
    for row in rows:
        ok = row["feasible"] and row["cost_agrees"]
        failures += not ok
        cost = row["verifier_cost"]
        cost_str = "n/a" if cost is None else f"{cost:,.0f}"
        verdict = (
            "ok" if ok else "FAILED " + "; ".join(row["problems"] + row["violations"])
        )
        print(
            f"{row['scenario']:<16} {row['method']:<9} seed={row['seed']} "
            f"cost={cost_str} {verdict} ({row['solve_seconds']:.1f}s)"
        )
    if args.save_plans:
        out = pathlib.Path(args.save_plans)
        out.mkdir(parents=True, exist_ok=True)
        for row in rows:
            scenario = zoo.get(row["scenario"])
            instance = scenario.build(row["seed"])
            plan = zoo.run_planner(
                instance, row["method"], time_limit=scenario.ilp_time_limit
            )
            path = out / f"{row['scenario']}-{row['method']}-{row['seed']}.json"
            plan.save(path)
            print(f"wrote {path}")
        (out / "baselines.json").write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return 1 if failures else 0


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "plan": _cmd_plan,
        "baseline": _cmd_baseline,
        "table2": _cmd_table2,
        "experiment": _cmd_experiment,
        "render": _cmd_render,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "scenarios": _cmd_scenarios,
    }
    trace_path = getattr(args, "telemetry_profile", None)
    if trace_path is None:
        return handlers[args.command](args)
    telemetry.enable(trace_path=trace_path)
    try:
        return handlers[args.command](args)
    finally:
        print()
        print(telemetry.summary())
        telemetry.disable()  # flushes the JSONL trace
        print(f"wrote telemetry trace to {trace_path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
