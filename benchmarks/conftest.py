"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation section at the ``quick`` experiment profile (see
``repro.experiments.scaling``): scaled-down topologies and epoch
budgets that finish in minutes on CPU while preserving the orderings
the paper reports.  Every run prints the regenerated series and writes
machine-readable rows to ``benchmarks/results/*.json`` for
EXPERIMENTS.md.

Environment knobs:

- ``NEUROPLAN_BENCH_PROFILE`` -- ``quick`` (default), ``standard`` or
  ``full``.
- ``NEUROPLAN_BENCH_TELEMETRY`` -- set to any non-empty value to
  collect telemetry during the run; each figure then also writes a
  ``results/<figure>.telemetry.json`` snapshot (counters, gauges and
  timer stats from ``repro.telemetry``) alongside its rows, so perf
  changes across PRs can be compared at the counter level, not just by
  wall time.  Off by default to keep timings clean.
"""

import dataclasses
import json
import os
import pathlib

import pytest

from repro import telemetry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile_name() -> str:
    return os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Opt-in telemetry for the whole benchmark session."""
    opted_in = bool(os.environ.get("NEUROPLAN_BENCH_TELEMETRY"))
    if opted_in:
        telemetry.enable()
    yield
    if opted_in:
        telemetry.disable()
        telemetry.reset()


@pytest.fixture(scope="session")
def save_rows():
    """Persist a figure's rows (and telemetry snapshot) for EXPERIMENTS.md."""

    def _save(figure: str, rows) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = [
            dataclasses.asdict(row) if dataclasses.is_dataclass(row) else row
            for row in rows
        ]
        path = RESULTS_DIR / f"{figure}.json"
        path.write_text(json.dumps(payload, indent=1, default=str))
        if telemetry.enabled():
            snapshot_path = RESULTS_DIR / f"{figure}.telemetry.json"
            snapshot_path.write_text(
                json.dumps(
                    {"figure": figure, "telemetry": telemetry.snapshot()},
                    indent=1,
                )
            )
            # Figures run back to back in one session: reset so each
            # snapshot covers only its own figure.
            telemetry.reset()

    return _save
