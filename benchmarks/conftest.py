"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation section at the ``quick`` experiment profile (see
``repro.experiments.scaling``): scaled-down topologies and epoch
budgets that finish in minutes on CPU while preserving the orderings
the paper reports.  Every run prints the regenerated series and writes
machine-readable rows to ``benchmarks/results/*.json`` for
EXPERIMENTS.md.

Environment knobs:

- ``NEUROPLAN_BENCH_PROFILE`` -- ``quick`` (default), ``standard`` or
  ``full``.
"""

import dataclasses
import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile_name() -> str:
    return os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")


@pytest.fixture(scope="session")
def save_rows():
    """Persist a figure's rows for EXPERIMENTS.md."""

    def _save(figure: str, rows) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = [
            dataclasses.asdict(row) if dataclasses.is_dataclass(row) else row
            for row in rows
        ]
        path = RESULTS_DIR / f"{figure}.json"
        path.write_text(json.dumps(payload, indent=1, default=str))

    return _save
