"""Benchmark regression gate: fresh fig7 run vs the committed baseline.

Runs the Fig. 7 evaluator-efficiency experiment at the quick profile
and compares it against ``benchmarks/results/fig7.json`` (the committed
snapshot), failing with a non-zero exit code on regressions instead of
merely uploading artifacts.

What is compared — only machine-independent signals, so the gate is
meaningful on any CI runner:

- ``lp_solves`` per (topology, mode): the evaluator workload is a
  deterministic trajectory replay, so the LP-solve count must match the
  baseline exactly; a change means the checker's pruning regressed (or
  improved — update the baseline deliberately in that case).
- mode ordering per topology: NeuroPlan's stateful checking must stay
  the fastest mode (within a slack factor), mirroring
  ``fig7_efficiency.expected_shape``.
- ``normalized`` ratios per (topology, mode): the vanilla/sa-to-
  NeuroPlan ratio may drift by at most ``--tolerance`` (default 3x)
  from the committed baseline in the regressing direction.

With ``--scenarios`` the gate re-runs the scenario-zoo baselines
(``bench_scenarios.py``) at the quick profile and compares against the
committed ``results/scenarios.json``:

- every (scenario, method, seed) cell must stay verifier-feasible with
  the verifier's cost equal to the planner's claim;
- greedy and ILP-heur costs must match the committed cells exactly
  (both planners are bitwise-deterministic by contract);
- the exact ILP's cost is an optimal objective value, so it must match
  within float tolerance and stay at or below both heuristics.

With ``--hotpath`` the gate instead re-runs the PR-5 hot-path
micro-benchmarks (``bench_hotpath.py``) at the quick profile and
compares against the committed ``results/hotpath.json``:

- evaluator ``lp_solves`` and verdict ``fingerprint`` must match the
  committed row exactly (both backends replay the same deterministic
  trajectory, so any drift is a behavior change, not noise);
- every row's ``speedup`` must stay within ``--tolerance`` of the
  committed speedup (ratios of two timings taken on the same machine,
  so they transfer across runners far better than raw times).

With ``--batched`` the gate re-runs the batched-environment scaling
benchmark (``bench_batched_envs.py``) at the quick profile and compares
against the committed ``results/batched_envs.json``:

- the K=16 speedup over the K=1 serial baseline must stay at or above
  the hard ``MIN_BATCHED_SPEEDUP`` floor (3x, the tentpole's acceptance
  criterion) — this is an absolute requirement, not relative drift;
- every batched row's speedup must additionally stay within
  ``--tolerance`` of the committed speedup (speedups are ratios of two
  timings from the same machine, so they transfer across runners);
- the merged reward stream invariance across env counts is asserted
  inside the benchmark itself, so a completed run already proves it.

With ``--solverfarm`` the gate re-runs the drift-workload benchmark
(``bench_solverfarm.py``) at the quick profile and compares against the
committed ``results/solverfarm.json``:

- the summary ``warm_speedup`` (cold plan vs warm replan over the drift
  stream) must stay at or above the hard ``MIN_REPLAN_SPEEDUP`` floor
  (3x, the ISSUE 9 acceptance criterion) — absolute, not relative;
- ``plans_match`` must be true and every true replan period must have
  warm-started off a verified prior (the equivalence anchor: the
  speedup is never bought with a different plan);
- ``warm_speedup`` and ``hit_speedup`` must additionally stay within
  ``--tolerance`` of the committed summary (same-machine ratios).

With ``--serving`` the gate re-runs the batched-inference ablation from
``bench_serving_throughput.py`` (serial reference + batching-off +
batching-on at concurrency 8) and compares against the committed
``results/serving_batched.json``:

- the batching-on throughput must stay at or above the hard
  ``MIN_SERVING_SPEEDUP`` floor (2x, the ISSUE 10 acceptance criterion)
  over the batching-off baseline — absolute, not relative drift;
- ``plans_match`` must be true on both rows (every batched plan is
  byte-identical to the serial reference) and the serial reference must
  stay standalone-verifier feasible — the speedup is never bought with
  a different plan;
- the on/off speedup must additionally stay within ``--tolerance`` of
  the committed ratio (same-machine ratios transfer across runners).

Usage::

    python benchmarks/check_regression.py [--tolerance 3.0]
        [--baseline benchmarks/results/fig7.json] [--update]
    python benchmarks/check_regression.py --hotpath [--tolerance 3.0]
    python benchmarks/check_regression.py --batched [--tolerance 3.0]
    python benchmarks/check_regression.py --solverfarm [--tolerance 3.0]
    python benchmarks/check_regression.py --serving [--tolerance 3.0]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SLACK = 0.9  # same ordering slack expected_shape uses


def load_baseline(path: pathlib.Path) -> dict:
    rows = json.loads(path.read_text())
    return {(row["topology"], row["mode"]): row for row in rows}


def run_fig7(profile: str) -> list[dict]:
    from repro.experiments import fig7_efficiency

    rows = fig7_efficiency.run(profile=profile, verbose=False)
    return [
        {
            "topology": r.topology,
            "mode": r.mode,
            "seconds": r.seconds,
            "normalized": r.normalized,
            "lp_solves": r.lp_solves,
        }
        for r in rows
    ]


def compare(baseline: dict, fresh: list[dict], tolerance: float) -> list[str]:
    problems: list[str] = []
    fresh_by_key = {(row["topology"], row["mode"]): row for row in fresh}

    missing = set(baseline) - set(fresh_by_key)
    if missing:
        problems.append(f"baseline keys missing from fresh run: {sorted(missing)}")

    for key, row in fresh_by_key.items():
        base = baseline.get(key)
        if base is None:
            problems.append(f"{key}: not in the committed baseline")
            continue
        if row["lp_solves"] != base["lp_solves"]:
            problems.append(
                f"{key}: lp_solves changed {base['lp_solves']} -> "
                f"{row['lp_solves']} (deterministic workload; the "
                f"checker's pruning behavior regressed or the baseline "
                f"is stale)"
            )
        if (
            row["normalized"] is not None
            and base["normalized"] is not None
            and row["normalized"] > base["normalized"] * tolerance
        ):
            problems.append(
                f"{key}: normalized time {row['normalized']:.2f} exceeds "
                f"baseline {base['normalized']:.2f} by more than "
                f"{tolerance}x"
            )

    # Ordering: NeuroPlan's evaluator stays fastest per topology.
    for topology in {t for t, _ in fresh_by_key}:
        neuroplan = fresh_by_key[topology, "neuroplan"]["seconds"]
        if neuroplan is None:
            problems.append(f"{topology}: neuroplan evaluator over budget")
            continue
        for mode in ("sa", "vanilla"):
            seconds = fresh_by_key[topology, mode]["seconds"]
            if seconds is not None and seconds < neuroplan * SLACK:
                problems.append(
                    f"{topology}: {mode} evaluator ({seconds:.3f}s) beat "
                    f"neuroplan ({neuroplan:.3f}s) — stateful checking "
                    f"stopped paying off"
                )
    return problems


def run_hotpath(profile: str) -> list[dict]:
    import bench_hotpath

    rows = []
    rows += bench_hotpath.bench_evaluator(profile)
    rows += bench_hotpath.bench_solver(profile)
    rows += bench_hotpath.bench_gnn(profile)
    rows += bench_hotpath.bench_mask(profile)
    return rows


def compare_hotpath(
    baseline: list[dict], fresh: list[dict], tolerance: float
) -> list[str]:
    problems: list[str] = []
    fresh_by_key = {(row["section"], row["key"]): row for row in fresh}
    baseline_by_key = {(row["section"], row["key"]): row for row in baseline}

    missing = set(baseline_by_key) - set(fresh_by_key)
    if missing:
        problems.append(f"baseline keys missing from fresh run: {sorted(missing)}")

    for key, row in fresh_by_key.items():
        base = baseline_by_key.get(key)
        if base is None:
            problems.append(f"{key}: not in the committed hotpath baseline")
            continue
        for exact_field in ("lp_solves", "fingerprint"):
            if exact_field in base and row.get(exact_field) != base[exact_field]:
                problems.append(
                    f"{key}: {exact_field} changed "
                    f"{base[exact_field]} -> {row.get(exact_field)} "
                    f"(deterministic replay; behavior changed or the "
                    f"baseline is stale)"
                )
        if row["speedup"] * tolerance < base["speedup"]:
            problems.append(
                f"{key}: speedup {row['speedup']:.2f}x fell more than "
                f"{tolerance}x below the committed {base['speedup']:.2f}x"
            )
    return problems


# Hard acceptance floor for batched collection: merged steps/sec at
# K=16 must be at least this multiple of the K=1 serial baseline.
MIN_BATCHED_SPEEDUP = 3.0


def run_batched(profile: str) -> list[dict]:
    import bench_batched_envs

    return bench_batched_envs.run_scaling(profile)


def compare_batched(
    baseline: list[dict], fresh: list[dict], tolerance: float
) -> list[str]:
    problems: list[str] = []
    fresh_by_envs = {row["num_envs"]: row for row in fresh}
    baseline_by_envs = {row["num_envs"]: row for row in baseline}

    missing = set(baseline_by_envs) - set(fresh_by_envs)
    if missing:
        problems.append(
            f"baseline env counts missing from fresh run: {sorted(missing)}"
        )

    k16 = fresh_by_envs.get(16)
    if k16 is None:
        problems.append("fresh run has no K=16 row")
    elif k16["speedup_vs_serial"] < MIN_BATCHED_SPEEDUP:
        problems.append(
            f"K=16 batched collection is {k16['speedup_vs_serial']:.2f}x "
            f"the serial baseline — below the {MIN_BATCHED_SPEEDUP}x "
            f"acceptance floor"
        )

    for num_envs, row in fresh_by_envs.items():
        base = baseline_by_envs.get(num_envs)
        if base is None:
            problems.append(f"K={num_envs}: not in the committed batched baseline")
            continue
        if row["speedup_vs_serial"] * tolerance < base["speedup_vs_serial"]:
            problems.append(
                f"K={num_envs}: speedup {row['speedup_vs_serial']:.2f}x "
                f"fell more than {tolerance}x below the committed "
                f"{base['speedup_vs_serial']:.2f}x"
            )
    return problems


# Hard acceptance floor for incremental replanning: warm replans over
# the drift stream must be at least this multiple faster than planning
# each drifted period cold (ISSUE 9 acceptance criterion).
MIN_REPLAN_SPEEDUP = 3.0


def run_solverfarm(profile: str) -> list[dict]:
    import bench_solverfarm

    return bench_solverfarm.run_drift(profile)


def compare_solverfarm(
    baseline: list[dict], fresh: list[dict], tolerance: float
) -> list[str]:
    problems: list[str] = []
    summary = next((r for r in fresh if r.get("period") == "summary"), None)
    base = next((r for r in baseline if r.get("period") == "summary"), None)
    if summary is None:
        return ["fresh run has no summary row"]
    if base is None:
        problems.append("committed baseline has no summary row")

    if summary["warm_speedup"] < MIN_REPLAN_SPEEDUP:
        problems.append(
            f"warm replan is {summary['warm_speedup']:.2f}x the cold plan "
            f"— below the {MIN_REPLAN_SPEEDUP}x acceptance floor"
        )
    # The equivalence anchor: a faster wrong plan is a regression.
    if summary["plans_match"] is not True:
        problems.append("warm replans no longer match the cold plans")
    if summary["warm_starts"] != summary["periods"] - 1:
        problems.append(
            f"only {summary['warm_starts']} of {summary['periods'] - 1} "
            f"replan periods warm-started — the delta path disengaged"
        )
    for row in fresh:
        if row.get("period") == "summary" or row.get("period") == 0:
            continue
        if not row.get("prior_verified"):
            problems.append(
                f"period {row['period']}: prior no longer verified on-path"
            )
        if not row.get("hit_cached"):
            problems.append(
                f"period {row['period']}: repeat replan missed the "
                f"solver-layer rollout cache"
            )

    if base is not None:
        for field in ("warm_speedup", "hit_speedup"):
            if summary[field] * tolerance < base[field]:
                problems.append(
                    f"{field} {summary[field]:.2f}x fell more than "
                    f"{tolerance}x below the committed {base[field]:.2f}x"
                )
    return problems


# Hard acceptance floor for cross-request batched inference: plan
# throughput with the coalescer on must be at least this multiple of
# the batching-off baseline at concurrency 8 (ISSUE 10 criterion).
MIN_SERVING_SPEEDUP = 2.0


def run_serving(profile: str) -> list[dict]:
    import tempfile

    import bench_serving_throughput as bst

    requests = bst.PROFILES[profile]["batch_requests"]
    with tempfile.TemporaryDirectory() as tmp_root:
        model_dir = bst.build_model_store(tmp_root)
        return bst.run_batched_suite(model_dir, requests=requests)


def compare_serving(
    baseline: list[dict], fresh: list[dict], tolerance: float
) -> list[str]:
    problems: list[str] = []
    fresh_by_key = {row["scenario"]: row for row in fresh}
    base_by_key = {row["scenario"]: row for row in baseline}

    serial = fresh_by_key.get("serial-reference")
    on = fresh_by_key.get("batched-on")
    off = fresh_by_key.get("batched-off")
    if serial is None or on is None or off is None:
        return [f"fresh run incomplete: {sorted(fresh_by_key)}"]

    if serial["verifier_feasible"] is not True:
        problems.append(
            "serial reference plan no longer passes the standalone verifier"
        )
    for row in (off, on):
        if row["plans_match"] is not True:
            problems.append(
                f"{row['scenario']}: plans diverged from the serial "
                f"reference — batching changed an answer"
            )
    if on["speedup_vs_off"] < MIN_SERVING_SPEEDUP:
        problems.append(
            f"batching-on throughput is {on['speedup_vs_off']:.2f}x the "
            f"batching-off baseline — below the {MIN_SERVING_SPEEDUP}x "
            f"acceptance floor"
        )
    if on.get("batches", 0) < 1 or on.get("max_batch_size", 0) < 2:
        problems.append(
            "the coalescer never formed a real batch (batches="
            f"{on.get('batches')}, max_batch_size={on.get('max_batch_size')})"
        )
    base_on = base_by_key.get("batched-on")
    if base_on is None:
        problems.append("committed baseline has no batched-on row")
    elif on["speedup_vs_off"] * tolerance < base_on["speedup_vs_off"]:
        problems.append(
            f"batched speedup {on['speedup_vs_off']:.2f}x fell more than "
            f"{tolerance}x below the committed "
            f"{base_on['speedup_vs_off']:.2f}x"
        )
    return problems


ILP_RTOL = 1e-6  # optimal objectives transfer across machines to float noise


def run_scenarios(profile: str) -> list[dict]:
    import bench_scenarios

    return bench_scenarios.run_scenarios(profile)


def compare_scenarios(baseline: list[dict], fresh: list[dict]) -> list[str]:
    problems: list[str] = []
    key = lambda r: (r["scenario"], r["method"], r["seed"])  # noqa: E731
    fresh_by_key = {key(r): r for r in fresh}
    baseline_by_key = {key(r): r for r in baseline}

    missing = set(baseline_by_key) - set(fresh_by_key)
    if missing:
        problems.append(f"baseline cells missing from fresh run: {sorted(missing)}")

    for cell, row in fresh_by_key.items():
        if not row["feasible"]:
            problems.append(
                f"{cell}: plan no longer passes the standalone verifier "
                f"({row['problems']} {row['violations']})"
            )
            continue
        if not row["cost_agrees"]:
            problems.append(
                f"{cell}: planner cost {row['planner_cost']} disagrees "
                f"with verifier cost {row['verifier_cost']}"
            )
        base = baseline_by_key.get(cell)
        if base is None:
            problems.append(f"{cell}: not in the committed scenarios baseline")
            continue
        _, method, _ = cell
        fresh_cost, base_cost = row["verifier_cost"], base["verifier_cost"]
        if method in ("greedy", "ilp-heur"):
            if fresh_cost != base_cost:
                problems.append(
                    f"{cell}: cost changed {base_cost} -> {fresh_cost} "
                    f"(deterministic planner; behavior changed or the "
                    f"baseline is stale)"
                )
        elif abs(fresh_cost - base_cost) > ILP_RTOL * max(1.0, abs(base_cost)):
            problems.append(
                f"{cell}: optimal ILP cost drifted {base_cost} -> {fresh_cost}"
            )

    # ILP stays at or below both heuristics on every fresh cell.
    for (scenario, method, seed), row in fresh_by_key.items():
        if method != "ilp":
            continue
        for heuristic in ("greedy", "ilp-heur"):
            other = fresh_by_key.get((scenario, heuristic, seed))
            if other is None:
                continue
            slack = ILP_RTOL * max(1.0, row["verifier_cost"])
            if row["verifier_cost"] > other["verifier_cost"] + slack:
                problems.append(
                    f"({scenario}, seed {seed}): ilp cost "
                    f"{row['verifier_cost']:.0f} exceeds {heuristic} "
                    f"({other['verifier_cost']:.0f}) — optimality lost"
                )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=RESULTS_DIR / "fig7.json",
        help="committed baseline to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="max allowed regression factor on normalized times",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        choices=("quick", "standard", "full"),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    parser.add_argument(
        "--hotpath",
        action="store_true",
        help="gate the bench_hotpath micro-benchmarks instead of fig7",
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help="gate the scenario-zoo baselines instead of fig7",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="gate the batched-environment scaling benchmark instead of fig7",
    )
    parser.add_argument(
        "--solverfarm",
        action="store_true",
        help="gate the solver-farm drift benchmark instead of fig7",
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="gate the batched-inference serving ablation instead of fig7",
    )
    args = parser.parse_args(argv)

    if args.serving:
        baseline_path = RESULTS_DIR / "serving_batched.json"
        print(
            f"running batched-inference serving ablation at "
            f"profile={args.profile} ..."
        )
        fresh = run_serving(args.profile)
        if args.update:
            baseline_path.write_text(json.dumps(fresh, indent=1) + "\n")
            print(f"baseline updated: {baseline_path}")
            return 0
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        problems = compare_serving(
            json.loads(baseline_path.read_text()), fresh, args.tolerance
        )
        if problems:
            print("serving regression gate FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        on = next(r for r in fresh if r["scenario"] == "batched-on")
        print(
            f"serving regression gate passed: batching buys "
            f"{on['speedup_vs_off']:.2f}x at concurrency "
            f"{on['concurrency']} (floor {MIN_SERVING_SPEEDUP}x, plans "
            f"byte-identical to serial)"
        )
        return 0

    if args.solverfarm:
        baseline_path = RESULTS_DIR / "solverfarm.json"
        print(f"running solver-farm drift benchmark at profile={args.profile} ...")
        fresh = run_solverfarm(args.profile)
        if args.update:
            baseline_path.write_text(json.dumps(fresh, indent=1) + "\n")
            print(f"baseline updated: {baseline_path}")
            return 0
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        problems = compare_solverfarm(
            json.loads(baseline_path.read_text()), fresh, args.tolerance
        )
        if problems:
            print("solver-farm regression gate FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        summary = next(r for r in fresh if r.get("period") == "summary")
        print(
            f"solver-farm regression gate passed: warm replan "
            f"{summary['warm_speedup']:.2f}x, cache hit "
            f"{summary['hit_speedup']:.2f}x over cold "
            f"(floor {MIN_REPLAN_SPEEDUP}x, plans identical)"
        )
        return 0

    if args.batched:
        baseline_path = RESULTS_DIR / "batched_envs.json"
        print(f"running batched-env scaling at profile={args.profile} ...")
        fresh = run_batched(args.profile)
        if args.update:
            baseline_path.write_text(json.dumps(fresh, indent=1) + "\n")
            print(f"baseline updated: {baseline_path}")
            return 0
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        problems = compare_batched(
            json.loads(baseline_path.read_text()), fresh, args.tolerance
        )
        if problems:
            print("batched-env regression gate FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        k16 = next(r for r in fresh if r["num_envs"] == 16)
        print(
            f"batched-env regression gate passed: K=16 at "
            f"{k16['speedup_vs_serial']:.2f}x serial "
            f"(floor {MIN_BATCHED_SPEEDUP}x)"
        )
        return 0

    if args.scenarios:
        baseline_path = RESULTS_DIR / "scenarios.json"
        print(f"running scenario baselines at profile={args.profile} ...")
        fresh = run_scenarios(args.profile)
        if args.update:
            baseline_path.write_text(json.dumps(fresh, indent=1) + "\n")
            print(f"baseline updated: {baseline_path}")
            return 0
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        problems = compare_scenarios(json.loads(baseline_path.read_text()), fresh)
        if problems:
            print("scenario regression gate FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"scenario regression gate passed: {len(fresh)} cells "
            f"verifier-feasible and cost-stable"
        )
        return 0

    if args.hotpath:
        baseline_path = RESULTS_DIR / "hotpath.json"
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        print(f"running hot-path benchmarks at profile={args.profile} ...")
        fresh = run_hotpath(args.profile)
        if args.update:
            committed = json.loads(baseline_path.read_text())
            committed[args.profile] = fresh
            baseline_path.write_text(json.dumps(committed, indent=1))
            print(f"baseline updated: {baseline_path} (profile={args.profile})")
            return 0
        committed = json.loads(baseline_path.read_text())
        baseline_rows = committed.get(args.profile)
        if baseline_rows is None:
            print(
                f"error: no '{args.profile}' section in {baseline_path}",
                file=sys.stderr,
            )
            return 2
        problems = compare_hotpath(baseline_rows, fresh, args.tolerance)
        if problems:
            print("hot-path regression gate FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"hot-path regression gate passed: {len(fresh)} rows within "
            f"{args.tolerance}x of committed speedups"
        )
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2

    print(f"running fig7 at profile={args.profile} ...")
    fresh = run_fig7(args.profile)

    if args.update:
        args.baseline.write_text(json.dumps(fresh, indent=1, default=str))
        print(f"baseline updated: {args.baseline}")
        return 0

    problems = compare(load_baseline(args.baseline), fresh, args.tolerance)
    if problems:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"benchmark regression gate passed: {len(fresh)} series within "
        f"{args.tolerance}x of {args.baseline.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
