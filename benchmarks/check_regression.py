"""Benchmark regression gate: fresh fig7 run vs the committed baseline.

Runs the Fig. 7 evaluator-efficiency experiment at the quick profile
and compares it against ``benchmarks/results/fig7.json`` (the committed
snapshot), failing with a non-zero exit code on regressions instead of
merely uploading artifacts.

What is compared — only machine-independent signals, so the gate is
meaningful on any CI runner:

- ``lp_solves`` per (topology, mode): the evaluator workload is a
  deterministic trajectory replay, so the LP-solve count must match the
  baseline exactly; a change means the checker's pruning regressed (or
  improved — update the baseline deliberately in that case).
- mode ordering per topology: NeuroPlan's stateful checking must stay
  the fastest mode (within a slack factor), mirroring
  ``fig7_efficiency.expected_shape``.
- ``normalized`` ratios per (topology, mode): the vanilla/sa-to-
  NeuroPlan ratio may drift by at most ``--tolerance`` (default 3x)
  from the committed baseline in the regressing direction.

Usage::

    python benchmarks/check_regression.py [--tolerance 3.0]
        [--baseline benchmarks/results/fig7.json] [--update]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SLACK = 0.9  # same ordering slack expected_shape uses


def load_baseline(path: pathlib.Path) -> dict:
    rows = json.loads(path.read_text())
    return {(row["topology"], row["mode"]): row for row in rows}


def run_fig7(profile: str) -> list[dict]:
    from repro.experiments import fig7_efficiency

    rows = fig7_efficiency.run(profile=profile, verbose=False)
    return [
        {
            "topology": r.topology,
            "mode": r.mode,
            "seconds": r.seconds,
            "normalized": r.normalized,
            "lp_solves": r.lp_solves,
        }
        for r in rows
    ]


def compare(baseline: dict, fresh: list[dict], tolerance: float) -> list[str]:
    problems: list[str] = []
    fresh_by_key = {(row["topology"], row["mode"]): row for row in fresh}

    missing = set(baseline) - set(fresh_by_key)
    if missing:
        problems.append(f"baseline keys missing from fresh run: {sorted(missing)}")

    for key, row in fresh_by_key.items():
        base = baseline.get(key)
        if base is None:
            problems.append(f"{key}: not in the committed baseline")
            continue
        if row["lp_solves"] != base["lp_solves"]:
            problems.append(
                f"{key}: lp_solves changed {base['lp_solves']} -> "
                f"{row['lp_solves']} (deterministic workload; the "
                f"checker's pruning behavior regressed or the baseline "
                f"is stale)"
            )
        if (
            row["normalized"] is not None
            and base["normalized"] is not None
            and row["normalized"] > base["normalized"] * tolerance
        ):
            problems.append(
                f"{key}: normalized time {row['normalized']:.2f} exceeds "
                f"baseline {base['normalized']:.2f} by more than "
                f"{tolerance}x"
            )

    # Ordering: NeuroPlan's evaluator stays fastest per topology.
    for topology in {t for t, _ in fresh_by_key}:
        neuroplan = fresh_by_key[topology, "neuroplan"]["seconds"]
        if neuroplan is None:
            problems.append(f"{topology}: neuroplan evaluator over budget")
            continue
        for mode in ("sa", "vanilla"):
            seconds = fresh_by_key[topology, mode]["seconds"]
            if seconds is not None and seconds < neuroplan * SLACK:
                problems.append(
                    f"{topology}: {mode} evaluator ({seconds:.3f}s) beat "
                    f"neuroplan ({neuroplan:.3f}s) — stateful checking "
                    f"stopped paying off"
                )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=RESULTS_DIR / "fig7.json",
        help="committed baseline to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="max allowed regression factor on normalized times",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        choices=("quick", "standard", "full"),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2

    print(f"running fig7 at profile={args.profile} ...")
    fresh = run_fig7(args.profile)

    if args.update:
        args.baseline.write_text(json.dumps(fresh, indent=1, default=str))
        print(f"baseline updated: {args.baseline}")
        return 0

    problems = compare(load_baseline(args.baseline), fresh, args.tolerance)
    if problems:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"benchmark regression gate passed: {len(fresh)} series within "
        f"{args.tolerance}x of {args.baseline.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
