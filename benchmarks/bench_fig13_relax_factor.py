"""Figure 13: impact of the relax factor alpha (1 / 1.25 / 1.5).

Paper shape: the second stage barely improves topology A (the RL plan
is already near optimal) and finds up to ~46% improvements on the
bigger bands; a larger alpha never yields a worse plan.
"""

from repro.experiments import fig13_relax_factor

BANDS = {
    "quick": ["A", "B", "C"],
    "standard": ["A", "B", "C", "D"],
    "full": ["A", "B", "C", "D", "E"],
}


def test_fig13_relax_factor(benchmark, save_rows, profile_name):
    bands = BANDS.get(profile_name, BANDS["quick"])
    rows = benchmark.pedantic(
        fig13_relax_factor.run,
        kwargs={"profile": profile_name, "bands": bands},
        rounds=1,
        iterations=1,
    )
    save_rows("fig13", rows)

    problems = fig13_relax_factor.expected_shape(rows)
    assert problems == [], problems

    # Monotone in alpha per band, and never worse than the first stage.
    by_band = {}
    for row in rows:
        by_band.setdefault(row.topology, []).append(row)
    for band, group in by_band.items():
        group.sort(key=lambda r: r.alpha)
        costs = [r.neuroplan_cost for r in group]
        assert costs == sorted(costs, reverse=True) or all(
            later <= earlier + 1e-6
            for earlier, later in zip(costs, costs[1:])
        )
        for row in group:
            assert row.normalized <= 1.0 + 1e-6
