"""Figure 9: scalability for large-scale problems (alpha=1.5).

Per band: First-stage / NeuroPlan / ILP-heur (=1.0) / ILP, with the
ILP given a hard time limit -- bands where it cannot finish reproduce
the paper's crosses.  Paper shape: ILP solves only the smallest band;
NeuroPlan undercuts ILP-heur by ~11-17% on the bigger bands.

The quick profile runs bands A-C (the RL + full-ILP attempt on the D/E
bands takes tens of minutes even scaled; use the standard/full profile
to add them).
"""


from repro.experiments import fig9_scalability

BANDS = {
    "quick": ["A", "B", "C"],
    "standard": ["A", "B", "C", "D"],
    "full": ["A", "B", "C", "D", "E"],
}


def test_fig9_scalability(benchmark, save_rows, profile_name):
    bands = BANDS.get(profile_name, BANDS["quick"])
    rows = benchmark.pedantic(
        fig9_scalability.run,
        kwargs={"profile": profile_name, "bands": bands},
        rounds=1,
        iterations=1,
    )
    save_rows("fig9", rows)

    problems = fig9_scalability.expected_shape(rows)
    assert problems == [], problems

    for row in rows:
        # NeuroPlan never loses to the hand-tuned heuristics.
        assert row.neuroplan_cost <= row.ilp_heur_cost + 1e-6
        # The second stage never worsens the first-stage plan.
        assert row.neuroplan_cost <= row.first_stage_cost + 1e-6
