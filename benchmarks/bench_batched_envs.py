"""Batched-environment rollout throughput vs ``num_envs`` (tentpole).

``repro.rl.batched`` stacks K independent ``PlanningEnv`` replicas and
runs the policy forward over all of them at once, so the GNN/MLP work
amortizes across replicas while each environment keeps its own LP
evaluator and RNG stream.  This benchmark measures exactly that axis:
merged steps/second at K in {1, 4, 16, 64} on one topology-A instance,
using the production collector factory (K=1 resolves to the serial
backend, so the speedup column is batched-vs-serial).

The workload uses a fine capacity unit (2.5 Gbps) so trajectories run
long before feasibility — the paper's regime (max trajectory length
2048) where the environment's provable-shortfall bound skips most LP
re-solves and the per-step cost is dominated by the policy forward,
i.e. the part batching can amortize.  Budgets are exact multiples of
``K * MAX_STEPS`` so every collected group lands on the budget with
zero discarded over-collection.

Recorded per row: wall-clock seconds, merged steps, steps/sec and the
speedup vs K=1.  The determinism contract is asserted on the measured
batches themselves: trajectory ``s`` is seeded by ``(seed, epoch, s)``
regardless of K, so the merged reward stream is bitwise invariant
across batched env counts (a larger budget only appends trajectories).
The K=1 baseline runs the legacy serial backend, whose single
sequential RNG is a different, documented seeding scheme — its
bitwise parity story lives in ``tests/rl/test_batched.py``, which
checks batched-vs-pool streams transition by transition.
"""

import os
import time

import numpy as np

from repro.rl.env import PlanningEnv
from repro.rl.policy import ActorCriticPolicy
from repro.rl.rollouts import make_collector
from repro.topology import generators

ENV_COUNTS = (1, 4, 16, 64)
MAX_STEPS = 128

# Base collection budget per measured round, by bench profile.  Each
# K's budget is max(base, K * MAX_STEPS) — a multiple of K * MAX_STEPS
# either way, so groups tile the budget exactly.
BUDGETS = {"quick": 2048, "standard": 4096, "full": 8192}


def build_env_policy():
    instance = generators.make_instance(
        "A", seed=0, scale=0.7, horizon="short", capacity_unit=2.5
    )
    env = PlanningEnv(instance, max_units_per_step=4, max_steps=MAX_STEPS)
    policy = ActorCriticPolicy(feature_dim=1, max_units=4, rng=0)
    return env, policy


def timed_collect(num_envs: int, budget: int):
    """One warmed, timed collection round; returns (seconds, rewards)."""
    env, policy = build_env_policy()
    collector = make_collector(
        env,
        policy,
        np.random.default_rng(0),
        rollout_backend="auto",
        num_workers=1,
        num_envs=num_envs,
        seed=0,
    )
    try:
        # Warm round: fused-path audits, LP template assembly and
        # allocator churn are not billed to the measured round.
        collector.collect(
            budget=num_envs * MAX_STEPS,
            max_trajectory_length=MAX_STEPS,
            epoch=0,
        )
        start = time.perf_counter()
        batch = collector.collect(
            budget=budget, max_trajectory_length=MAX_STEPS, epoch=1
        )
        seconds = time.perf_counter() - start
    finally:
        collector.close()
    rewards = [
        t.reward for f in batch.fragments for t in f.transitions
    ]
    assert batch.num_steps == budget, (
        f"K={num_envs} collected {batch.num_steps} steps for budget {budget}"
    )
    return seconds, rewards


def run_scaling(profile_name: "str | None" = None) -> list:
    if profile_name is None:
        profile_name = os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")
    base_budget = BUDGETS.get(profile_name, BUDGETS["quick"])
    cpu_count = os.cpu_count() or 1

    rows = []
    reward_streams = {}
    serial_seconds = None
    for num_envs in ENV_COUNTS:
        budget = max(base_budget, num_envs * MAX_STEPS)
        seconds, rewards = timed_collect(num_envs, budget)
        reward_streams[num_envs] = rewards
        if num_envs == 1:
            serial_seconds = seconds
        rows.append(
            {
                "num_envs": num_envs,
                "budget": budget,
                "seconds": seconds,
                "steps": budget,
                "steps_per_sec": budget / seconds,
                "speedup_vs_serial": (
                    (serial_seconds / seconds) * (budget / base_budget)
                ),
                "cpu_count": cpu_count,
            }
        )

    # The determinism contract on the measured batches: trajectory s is
    # seeded by (seed, epoch, s) regardless of K, and merge order is by
    # s — so every batched K's merged reward stream starts with the
    # smallest batched K's stream.  (K=1 is the legacy serial backend
    # with its own sequential-RNG scheme, so it is not in this check.)
    reference = reward_streams[ENV_COUNTS[1]]
    for num_envs in ENV_COUNTS[2:]:
        prefix = reward_streams[num_envs][: len(reference)]
        assert prefix == reference, (
            f"merged reward stream diverged between {ENV_COUNTS[1]} and "
            f"{num_envs} envs"
        )
    return rows


def test_batched_env_scaling(benchmark, save_rows):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    save_rows("batched_envs", rows)
    print("\nBatched environment scaling (merged steps/sec):")
    for row in rows:
        print(
            f"  K={row['num_envs']:3d}: {row['steps_per_sec']:8.1f} steps/s "
            f"(speedup {row['speedup_vs_serial']:.2f})"
        )

    by_envs = {r["num_envs"]: r for r in rows}
    # Batching amortizes the policy forward without needing extra
    # cores, so a real speedup is expected even on one CPU.  The hard
    # >= 3x acceptance floor at K=16 is enforced by check_regression.py
    # --batched against the committed baseline; here only sanity.
    assert by_envs[16]["speedup_vs_serial"] > 1.5, (
        f"K=16 batching not faster: "
        f"{by_envs[16]['speedup_vs_serial']:.2f}x"
    )
    assert by_envs[4]["speedup_vs_serial"] > 1.0, (
        f"K=4 batching not faster: {by_envs[4]['speedup_vs_serial']:.2f}x"
    )
