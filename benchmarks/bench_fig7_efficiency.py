"""Figure 7: plan-evaluator implementation efficiency.

Replays identical capacity trajectories through the three evaluator
implementations (Vanilla, SA, NeuroPlan = SA + stateful checking) on
every topology band and reports runtimes normalized to NeuroPlan --
the paper's exact presentation, including omission crosses for
over-budget Vanilla entries.

Paper shape: SA ~2x faster than Vanilla on A and increasingly more on
bigger bands; NeuroPlan another 7-14x over SA.
"""

from repro.experiments import fig7_efficiency


def test_fig7_evaluator_efficiency(benchmark, save_rows, profile_name):
    rows = benchmark.pedantic(
        fig7_efficiency.run,
        kwargs={"profile": profile_name, "bands": ["A", "B", "C", "D", "E"]},
        rounds=1,
        iterations=1,
    )
    save_rows("fig7", rows)

    problems = fig7_efficiency.expected_shape(rows)
    assert problems == [], problems

    # The ordering vanilla >= sa >= neuroplan must hold on every band
    # where all three completed.
    by_key = {(r.topology, r.mode): r for r in rows}
    for band in {r.topology for r in rows}:
        vanilla = by_key[band, "vanilla"].seconds
        sa = by_key[band, "sa"].seconds
        neuroplan = by_key[band, "neuroplan"].seconds
        assert neuroplan is not None
        if sa is not None:
            assert neuroplan <= sa * 1.1
        if vanilla is not None and sa is not None:
            assert sa <= vanilla * 1.1
