"""Figure 12: impact of the maximum capacity units per step (1 / 4 / 16).

Paper shape: the knob has nearly no influence on first-stage cost;
larger units can converge faster in epochs on A-1 (panel b, saved as
epoch-reward curves).
"""

from repro.experiments import fig12_capacity_units


def test_fig12_capacity_units(benchmark, save_rows, profile_name):
    rows = benchmark.pedantic(
        fig12_capacity_units.run,
        kwargs={"profile": profile_name},
        rounds=1,
        iterations=1,
    )
    save_rows("fig12", rows)

    problems = fig12_capacity_units.expected_shape(rows)
    assert problems == [], problems

    # Every unit choice converges on every variant (the action space is
    # small and masked, so exploration finds feasible plans).
    for row in rows:
        assert row.converged, f"{row.variant} @ {row.max_units} units"
