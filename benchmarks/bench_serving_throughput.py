"""Serving-layer load benchmark: throughput and tail latency.

A closed-loop multi-threaded load generator drives an *in-process*
:class:`~repro.serve.service.PlanningService` (no HTTP overhead -- the
transport is measured elsewhere; this isolates the serving core).  Each
client thread issues requests back-to-back over a small pool of seeds,
so the cache-on scenario converges to mostly-hits -- exactly the
"millions of users asking for the same handful of plans" regime the
ROADMAP targets -- while the cache-off ablation pays the full rollout
for every request.

Recorded per scenario: wall-clock seconds, completed requests,
throughput (req/s), p50/p99 latency (ms), cache hit/miss counts, and
overload rejections (closed-loop clients never see one unless the
queue is undersized; the count keeps the run honest).

Two replicated-serving profiles ride along (PR 8):

* **multi-replica saturation** -- the same closed-loop load against a
  supervisor + dispatcher with N crash-only replica processes.  On a
  multi-core host the process replicas escape the GIL and beat the
  single-process ceiling (asserted when ``os.cpu_count() >= 2``); on a
  single core they can only pay the IPC tax, so the assertion there is
  "no cliff" (>= 60% of single-process).  ``cpu_count`` is recorded in
  the row so committed results are interpretable either way.
* **2x-saturation shedding** -- a deliberately tiny capacity driven at
  twice its limit with mixed priorities.  Graceful degradation, not an
  error cliff: interactive (p0) requests never see a typed rejection,
  normal (p1) traffic falls back to cache-only answers, and only
  background (p2) requests are hard-shed.

The **batched-inference ablation** (ISSUE 10) rides along in a second
result file (``serving_batched.json``): the same closed-loop load at
concurrency 8, all clients requesting the same (seed, version) with the
cache off, with the forward coalescer toggled off and on.  Batching
must buy >= 2x plan throughput while every plan stays byte-identical to
the serial reference (checked per response) and standalone-verifier
feasible.  The replica scaling row is also re-measured with batching
off and on inside each replica.
"""

import os
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import telemetry
from repro.errors import Overloaded, ReproError
from repro.rl.a2c import A2CConfig
from repro.rl.agent import AgentConfig, NeuroPlanAgent
from repro.serve import (
    Dispatcher,
    DispatcherConfig,
    ModelKey,
    ModelStore,
    PlanningService,
    PlanRequest,
    ServiceConfig,
    Supervisor,
    SupervisorConfig,
)
from repro.topology import generators

TOPOLOGY = "A"
SCALE = 0.5
MAX_STEPS = 96
MAX_UNITS = 2
SEED_POOL = (0, 1, 2, 3)

# Requests per client thread, by bench profile.  ``batch_requests`` is
# the per-client count for the batching-on/off ablation (fixed
# concurrency BATCH_CONCURRENCY, single seed).
PROFILES = {
    "quick": {"clients": 6, "requests_per_client": 12, "batch_requests": 6},
    "standard": {"clients": 16, "requests_per_client": 48, "batch_requests": 12},
    "full": {"clients": 32, "requests_per_client": 96, "batch_requests": 24},
}

REPLICAS = 2

# The batched-inference ablation: ISSUE 10's acceptance criterion is
# >= 2x throughput at this concurrency with batching on vs off.
BATCH_CONCURRENCY = 8
BATCH_SEED = 0


def _profile() -> dict:
    return PROFILES[os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")]


def build_model_store(tmp_root: str) -> str:
    """Train one tiny policy and publish it; return the store root."""
    instance = generators.make_instance(
        TOPOLOGY, seed=0, scale=SCALE, horizon="short"
    )
    agent = NeuroPlanAgent(
        instance,
        AgentConfig(
            max_units_per_step=MAX_UNITS,
            max_steps=MAX_STEPS,
            a2c=A2CConfig(
                epochs=2, steps_per_epoch=48, max_trajectory_length=MAX_STEPS, seed=0
            ),
        ),
    )
    agent.train()
    ModelStore(tmp_root).publish(
        agent.policy,
        key=ModelKey(TOPOLOGY, SCALE, "short"),
        agent_kwargs={
            "max_units_per_step": MAX_UNITS,
            "max_steps": MAX_STEPS,
            "evaluator_mode": "neuroplan",
            "feature_set": "capacity",
        },
        source={"algo": "a2c", "bench": "serving_throughput"},
    )
    return tmp_root


def run_scenario(model_dir: str, *, cache: bool, clients: int, requests: int) -> dict:
    service = PlanningService(
        model_dir,
        ServiceConfig(
            workers=min(4, os.cpu_count() or 1),
            queue_depth=max(16, clients * 2),
            cache_size=64 if cache else 0,
        ),
    )
    # Warm every (seed -> agent) pair outside the measured window so the
    # one-time environment builds are not billed as request latency.
    for seed in SEED_POOL:
        service.plan(
            PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=seed, no_cache=True
            )
        )

    latencies: list[float] = []
    overloads = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        for i in range(requests):
            seed = SEED_POOL[(index + i) % len(SEED_POOL)]
            req = PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=seed, no_cache=not cache
            )
            started = time.perf_counter()
            try:
                service.plan(req)
            except Overloaded:
                with lock:
                    overloads[0] += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    stats = service.cache.stats()
    service.close()

    latencies.sort()
    quantile = lambda q: latencies[min(len(latencies) - 1, int(q * len(latencies)))]
    return {
        "scenario": "cache-on" if cache else "cache-off",
        "clients": clients,
        "completed": len(latencies),
        "overloads": overloads[0],
        "seconds": wall,
        "throughput_rps": len(latencies) / wall,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
    }


def run_replica_scenario(
    model_dir: str, *, clients: int, requests: int, batching: bool = True
) -> dict:
    """The multi-replica saturation profile: identical closed-loop
    cache-off load, served by REPLICAS crash-only processes.  With
    ``batching`` each replica coalesces its own concurrent rollout
    forwards (plans are bitwise unchanged either way)."""
    supervisor = Supervisor(
        model_dir,
        service_config=ServiceConfig(
            workers=2,
            queue_depth=max(16, clients * 2),
            cache_size=0,
            batching=batching,
        ),
        config=SupervisorConfig(replicas=REPLICAS, startup_timeout_s=300.0),
    ).start()
    dispatcher = Dispatcher(supervisor, DispatcherConfig())
    # Warm every replica's (seed -> agent) pairs: enough concurrent
    # requests that least-loaded routing touches both replicas.
    with ThreadPoolExecutor(max_workers=REPLICAS * len(SEED_POOL)) as warm:
        for future in [
            warm.submit(
                dispatcher.plan,
                PlanRequest(
                    topology=TOPOLOGY, scale=SCALE, seed=seed, no_cache=True
                ),
            )
            for _ in range(REPLICAS)
            for seed in SEED_POOL
        ]:
            future.result(timeout=300)

    latencies: list[float] = []
    overloads = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        for i in range(requests):
            seed = SEED_POOL[(index + i) % len(SEED_POOL)]
            req = PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=seed, no_cache=True
            )
            started = time.perf_counter()
            try:
                dispatcher.plan(req)
            except Overloaded:
                with lock:
                    overloads[0] += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    healthy = dispatcher.supervisor.healthy_count()
    dispatcher.close()

    latencies.sort()
    quantile = lambda q: latencies[min(len(latencies) - 1, int(q * len(latencies)))]
    suffix = "" if batching else "-batching-off"
    return {
        "scenario": f"{REPLICAS}-replicas{suffix}",
        "batching": batching,
        "clients": clients,
        "completed": len(latencies),
        "overloads": overloads[0],
        "seconds": wall,
        "throughput_rps": len(latencies) / wall,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "cpu_count": os.cpu_count(),
        "healthy_replicas": healthy,
    }


def run_shed_scenario(model_dir: str) -> dict:
    """2x saturation against a deliberately tiny replicated capacity,
    with a mixed-priority request stream and warm caches -- the graceful
    degradation profile (shed tiers instead of an error cliff)."""
    supervisor = Supervisor(
        model_dir,
        service_config=ServiceConfig(workers=1, queue_depth=2, cache_size=64),
        config=SupervisorConfig(replicas=REPLICAS, startup_timeout_s=300.0),
    ).start()
    dispatcher = Dispatcher(supervisor, DispatcherConfig())
    capacity = dispatcher.load()["capacity"]
    telemetry.enable()
    # Warm both replicas' response caches over the seed pool so the
    # cache_only tier has answers to serve.  Priority 0 because the tiny
    # capacity is already saturated by the warm-up itself (p0 is the one
    # class the shedder never starves), and concurrency below capacity
    # so the replicas' own bounded queues never reject the warm-up.
    with ThreadPoolExecutor(max_workers=max(1, capacity - 2)) as warm:
        for future in [
            warm.submit(
                dispatcher.plan,
                PlanRequest(
                    topology=TOPOLOGY, scale=SCALE, seed=seed, priority=0
                ),
            )
            for _ in range(REPLICAS * 2)
            for seed in SEED_POOL
        ]:
            future.result(timeout=300)
    telemetry.reset()  # measure only the saturated window

    clients = 2 * capacity  # closed-loop in-flight ~= 2x capacity
    requests = 4
    outcomes: list[tuple[int, str]] = []  # (priority, outcome)
    lock = threading.Lock()

    def client(index: int) -> None:
        priority = index % 3
        for i in range(requests):
            seed = SEED_POOL[(index + i) % len(SEED_POOL)]
            req = PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=seed, priority=priority
            )
            try:
                response = dispatcher.plan(req)
                outcome = response.get("shed") or "full"
            except Overloaded:
                outcome = "rejected"
            except ReproError:
                outcome = "error"
            with lock:
                outcomes.append((priority, outcome))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    counters = {
        name: value
        for name, value in telemetry.snapshot()["counters"].items()
        if name.startswith("serve.shed") or name == "serve.responses"
    }
    telemetry.disable()
    telemetry.reset()
    dispatcher.close()

    def tally(priority: int) -> dict:
        mine = [outcome for p, outcome in outcomes if p == priority]
        return {
            outcome: mine.count(outcome)
            for outcome in (
                "full",
                "cache_only",
                "solver_cache_only",
                "skip_ilp",
                "rejected",
                "error",
            )
            if mine.count(outcome)
        }

    return {
        "scenario": "2x-saturation-shed",
        "capacity": capacity,
        "clients": clients,
        "issued": clients * requests,
        "seconds": wall,
        "by_priority": {p: tally(p) for p in (0, 1, 2)},
        "shed_counters": counters,
        "cpu_count": os.cpu_count(),
    }


def _serial_reference(model_dir: str) -> dict:
    """The ground-truth response: one request, one worker, no batching."""
    config = ServiceConfig(workers=1, cache_size=0, batching=False)
    with PlanningService(model_dir, config) as service:
        return service.plan(
            PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=BATCH_SEED, no_cache=True
            )
        )


def run_batched_scenario(
    model_dir: str,
    *,
    batching: bool,
    requests: int,
    reference: dict,
) -> dict:
    """Closed-loop same-seed load at BATCH_CONCURRENCY with the forward
    coalescer toggled.  Every response is compared byte-for-byte against
    the serial ``reference`` plan, so the throughput ratio is only
    meaningful if batching changed *nothing* about the answers."""
    clients = BATCH_CONCURRENCY
    service = PlanningService(
        model_dir,
        ServiceConfig(
            workers=clients,
            queue_depth=2 * clients,
            cache_size=0,
            batching=batching,
            batch_window_ms=4.0,
            max_batch=clients,
        ),
    )
    # Warm with one full-concurrency wave: builds the env-pool clones and
    # runs the one-time fused-gemm audits outside the measured window.
    with ThreadPoolExecutor(max_workers=clients) as warm:
        for future in [
            warm.submit(
                service.plan,
                PlanRequest(
                    topology=TOPOLOGY, scale=SCALE, seed=BATCH_SEED, no_cache=True
                ),
            )
            for _ in range(clients)
        ]:
            future.result(timeout=600)

    latencies: list[float] = []
    mismatches = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        for _ in range(requests):
            req = PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=BATCH_SEED, no_cache=True
            )
            started = time.perf_counter()
            response = service.plan(req)
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if response["plan"] != reference["plan"]:
                    mismatches[0] += 1

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    stats = service.batching_stats()
    service.close()

    latencies.sort()
    quantile = lambda q: latencies[min(len(latencies) - 1, int(q * len(latencies)))]
    row = {
        "scenario": "batched-on" if batching else "batched-off",
        "concurrency": clients,
        "seed": BATCH_SEED,
        "completed": len(latencies),
        "seconds": wall,
        "throughput_rps": len(latencies) / wall,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "plans_match": mismatches[0] == 0,
        "cpu_count": os.cpu_count(),
    }
    if batching and stats.get("enabled") and stats.get("models"):
        (model_stats,) = stats["models"].values()
        row["batches"] = model_stats["batches"]
        row["coalesced_requests"] = model_stats["coalesced_requests"]
        row["max_batch_size"] = model_stats["max_batch_size"]
    return row


def run_batched_suite(model_dir: str, *, requests: int) -> list:
    """The full batching ablation: serial reference (standalone-verifier
    checked), batching-off baseline, batching-on measurement."""
    from repro.scenarios import verify_plan
    from repro.topology import generators as _gen

    reference = _serial_reference(model_dir)
    instance = _gen.make_instance(
        TOPOLOGY, seed=BATCH_SEED, scale=SCALE, horizon="short"
    )
    report = verify_plan(instance, reference["plan"], reference["method"])
    rows = [
        {
            "scenario": "serial-reference",
            "seed": BATCH_SEED,
            "cost": reference["cost"],
            "feasible": reference["feasible"],
            "verifier_feasible": report.feasible,
        }
    ]
    off = run_batched_scenario(
        model_dir, batching=False, requests=requests, reference=reference
    )
    on = run_batched_scenario(
        model_dir, batching=True, requests=requests, reference=reference
    )
    on["speedup_vs_off"] = on["throughput_rps"] / off["throughput_rps"]
    rows.extend([off, on])
    return rows


def run_benchmark(tmp_root: str) -> dict:
    profile = _profile()
    model_dir = build_model_store(tmp_root)
    rows = []
    for cache in (False, True):
        rows.append(
            run_scenario(
                model_dir,
                cache=cache,
                clients=profile["clients"],
                requests=profile["requests_per_client"],
            )
        )
    for batching in (True, False):
        rows.append(
            run_replica_scenario(
                model_dir,
                clients=profile["clients"],
                requests=profile["requests_per_client"],
                batching=batching,
            )
        )
    rows.append(run_shed_scenario(model_dir))
    batched = run_batched_suite(model_dir, requests=profile["batch_requests"])
    return {"throughput": rows, "batched": batched}


def test_bench_serving_throughput(benchmark, save_rows, tmp_path):
    results = benchmark.pedantic(
        run_benchmark, args=(str(tmp_path),), rounds=1, iterations=1
    )
    rows, batched_rows = results["throughput"], results["batched"]
    save_rows("serving_throughput", rows)
    save_rows("serving_batched", batched_rows)
    print("\nServing throughput (closed-loop, in-process):")
    for row in rows + batched_rows:
        if "throughput_rps" in row:
            print(
                f"  {row['scenario']:>22}: {row['throughput_rps']:8.1f} req/s  "
                f"p50 {row['p50_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms"
            )
        elif "issued" in row:
            print(
                f"  {row['scenario']:>22}: {row['issued']} requests over "
                f"{row['capacity']} capacity -> {row['by_priority']}"
            )

    by_scenario = {row["scenario"]: row for row in rows}
    on, off = by_scenario["cache-on"], by_scenario["cache-off"]
    closed_loop = [
        on,
        off,
        by_scenario[f"{REPLICAS}-replicas"],
        by_scenario[f"{REPLICAS}-replicas-batching-off"],
    ]
    # Every request completed; closed-loop clients + a big queue means
    # backpressure should never fire here.
    for row in closed_loop:
        assert row["overloads"] == 0
        assert row["completed"] == row["clients"] * _profile()["requests_per_client"]
    # The ablation claim: response caching is a massive win on a
    # repeated-request mix, in both throughput and tail latency.
    assert on["cache_hits"] > 0
    assert on["throughput_rps"] > off["throughput_rps"] * 2
    assert on["p50_ms"] < off["p50_ms"]

    # Multi-replica saturation: with real cores to use, process replicas
    # escape the GIL and beat the single-process ceiling; on one core
    # the requirement degrades to "no cliff" (IPC tax only).
    replicated = by_scenario[f"{REPLICAS}-replicas"]
    assert replicated["healthy_replicas"] == REPLICAS
    if (os.cpu_count() or 1) >= 2:
        assert replicated["throughput_rps"] > off["throughput_rps"]
    else:
        assert replicated["throughput_rps"] > off["throughput_rps"] * 0.6

    # 2x saturation degrades gracefully, never as an error cliff:
    # interactive traffic is never hard-rejected, shedding engaged, and
    # well over half of all requests still complete with answers.
    shed = by_scenario["2x-saturation-shed"]
    by_priority = shed["by_priority"]
    # The shedder never hard-rejects p0; the few rejections p0 can see
    # come from a replica's own bounded queue during the initial burst,
    # before the load signal has ramped.  A cliff would reject most.
    p0_total = sum(by_priority[0].values())
    p0_failed = by_priority[0].get("rejected", 0) + by_priority[0].get("error", 0)
    assert p0_failed <= p0_total * 0.25, by_priority
    total = sum(sum(t.values()) for t in by_priority.values())
    assert total == shed["issued"]
    served = sum(
        t.get("full", 0) + t.get("cache_only", 0) + t.get("skip_ilp", 0)
        for t in by_priority.values()
    )
    degraded = sum(
        t.get("cache_only", 0) + t.get("skip_ilp", 0)
        for t in by_priority.values()
    )
    assert degraded > 0, "2x saturation never engaged the shed tiers"
    assert served >= shed["issued"] * 0.5, by_priority
    assert sum(
        count
        for name, count in shed["shed_counters"].items()
        if name.startswith("serve.shed.tier")
    ) > 0

    # The batched-inference ablation (ISSUE 10): coalescing concurrent
    # same-version forwards buys >= 2x plan throughput at concurrency 8
    # while leaving every plan byte-identical to serial execution, and
    # the serial reference itself survives the standalone verifier.
    batched = {row["scenario"]: row for row in batched_rows}
    serial = batched["serial-reference"]
    assert serial["verifier_feasible"] is True
    assert serial["feasible"] is True
    batch_off, batch_on = batched["batched-off"], batched["batched-on"]
    for row in (batch_off, batch_on):
        assert row["plans_match"] is True, row
        assert row["completed"] == BATCH_CONCURRENCY * _profile()["batch_requests"]
    assert batch_on["batches"] >= 1
    assert batch_on["max_batch_size"] >= 2
    assert batch_on["speedup_vs_off"] >= 2.0, batch_on
    # Each replica coalesces internally too: batching-on replicas must
    # not be slower than batching-off ones beyond noise.
    replicated_off = by_scenario[f"{REPLICAS}-replicas-batching-off"]
    assert replicated_off["healthy_replicas"] == REPLICAS
    assert replicated["throughput_rps"] > replicated_off["throughput_rps"] * 0.8
