"""Serving-layer load benchmark: throughput and tail latency.

A closed-loop multi-threaded load generator drives an *in-process*
:class:`~repro.serve.service.PlanningService` (no HTTP overhead -- the
transport is measured elsewhere; this isolates the serving core).  Each
client thread issues requests back-to-back over a small pool of seeds,
so the cache-on scenario converges to mostly-hits -- exactly the
"millions of users asking for the same handful of plans" regime the
ROADMAP targets -- while the cache-off ablation pays the full rollout
for every request.

Recorded per scenario: wall-clock seconds, completed requests,
throughput (req/s), p50/p99 latency (ms), cache hit/miss counts, and
overload rejections (closed-loop clients never see one unless the
queue is undersized; the count keeps the run honest).
"""

import os
import statistics
import threading
import time

from repro.errors import Overloaded
from repro.rl.a2c import A2CConfig
from repro.rl.agent import AgentConfig, NeuroPlanAgent
from repro.serve import (
    ModelKey,
    ModelStore,
    PlanningService,
    PlanRequest,
    ServiceConfig,
)
from repro.topology import generators

TOPOLOGY = "A"
SCALE = 0.5
MAX_STEPS = 96
MAX_UNITS = 2
SEED_POOL = (0, 1, 2, 3)

# Requests per client thread, by bench profile.
PROFILES = {
    "quick": {"clients": 6, "requests_per_client": 12},
    "standard": {"clients": 16, "requests_per_client": 48},
    "full": {"clients": 32, "requests_per_client": 96},
}


def build_model_store(tmp_root: str) -> str:
    """Train one tiny policy and publish it; return the store root."""
    instance = generators.make_instance(
        TOPOLOGY, seed=0, scale=SCALE, horizon="short"
    )
    agent = NeuroPlanAgent(
        instance,
        AgentConfig(
            max_units_per_step=MAX_UNITS,
            max_steps=MAX_STEPS,
            a2c=A2CConfig(
                epochs=2, steps_per_epoch=48, max_trajectory_length=MAX_STEPS, seed=0
            ),
        ),
    )
    agent.train()
    ModelStore(tmp_root).publish(
        agent.policy,
        key=ModelKey(TOPOLOGY, SCALE, "short"),
        agent_kwargs={
            "max_units_per_step": MAX_UNITS,
            "max_steps": MAX_STEPS,
            "evaluator_mode": "neuroplan",
            "feature_set": "capacity",
        },
        source={"algo": "a2c", "bench": "serving_throughput"},
    )
    return tmp_root


def run_scenario(model_dir: str, *, cache: bool, clients: int, requests: int) -> dict:
    service = PlanningService(
        model_dir,
        ServiceConfig(
            workers=min(4, os.cpu_count() or 1),
            queue_depth=max(16, clients * 2),
            cache_size=64 if cache else 0,
        ),
    )
    # Warm every (seed -> agent) pair outside the measured window so the
    # one-time environment builds are not billed as request latency.
    for seed in SEED_POOL:
        service.plan(
            PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=seed, no_cache=True
            )
        )

    latencies: list[float] = []
    overloads = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        for i in range(requests):
            seed = SEED_POOL[(index + i) % len(SEED_POOL)]
            req = PlanRequest(
                topology=TOPOLOGY, scale=SCALE, seed=seed, no_cache=not cache
            )
            started = time.perf_counter()
            try:
                service.plan(req)
            except Overloaded:
                with lock:
                    overloads[0] += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    stats = service.cache.stats()
    service.close()

    latencies.sort()
    quantile = lambda q: latencies[min(len(latencies) - 1, int(q * len(latencies)))]
    return {
        "scenario": "cache-on" if cache else "cache-off",
        "clients": clients,
        "completed": len(latencies),
        "overloads": overloads[0],
        "seconds": wall,
        "throughput_rps": len(latencies) / wall,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
    }


def run_benchmark(tmp_root: str) -> list:
    profile = PROFILES[os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")]
    model_dir = build_model_store(tmp_root)
    rows = []
    for cache in (False, True):
        rows.append(
            run_scenario(
                model_dir,
                cache=cache,
                clients=profile["clients"],
                requests=profile["requests_per_client"],
            )
        )
    return rows


def test_bench_serving_throughput(benchmark, save_rows, tmp_path):
    rows = benchmark.pedantic(
        run_benchmark, args=(str(tmp_path),), rounds=1, iterations=1
    )
    save_rows("serving_throughput", rows)
    print("\nServing throughput (closed-loop, in-process):")
    for row in rows:
        print(
            f"  {row['scenario']:>9}: {row['throughput_rps']:8.1f} req/s  "
            f"p50 {row['p50_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms  "
            f"hits/misses {row['cache_hits']}/{row['cache_misses']}"
        )

    by_scenario = {row["scenario"]: row for row in rows}
    on, off = by_scenario["cache-on"], by_scenario["cache-off"]
    # Every request completed; closed-loop clients + a big queue means
    # backpressure should never fire here.
    for row in rows:
        assert row["overloads"] == 0
        assert row["completed"] == row["clients"] * PROFILES[
            os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")
        ]["requests_per_client"]
    # The ablation claim: response caching is a massive win on a
    # repeated-request mix, in both throughput and tail latency.
    assert on["cache_hits"] > 0
    assert on["throughput_rps"] > off["throughput_rps"] * 2
    assert on["p50_ms"] < off["p50_ms"]
