"""Figure 1: the motivating short- vs long-term planning example.

Regenerates the paper's worked example end to end: short-term planning
must build both IP links (6 fibers); long-term planning with candidate
fiber B-F finds plan (1, 3) at 5 fibers because links 1 and 3 share
fiber A-B.
"""

from repro.planning import ILPPlanner
from repro.topology import datasets


def run_figure1() -> dict:
    short = datasets.figure1_topology(long_term=False)
    short_plan = ILPPlanner().plan(short).plan
    long = datasets.figure1_topology(long_term=True)
    long_plan = ILPPlanner().plan(long).plan
    return {
        "short_capacities": short_plan.capacities,
        "short_fibers": len(
            short.cost_model.lit_fibers(short.network, short_plan.capacities)
        ),
        "long_capacities": long_plan.capacities,
        "long_fibers": len(
            long.cost_model.lit_fibers(long.network, long_plan.capacities)
        ),
    }


def test_figure1_example(benchmark, save_rows):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    save_rows("fig1", [result])

    print("\nFigure 1 (short-term):", result["short_capacities"],
          f"-> {result['short_fibers']} fibers")
    print("Figure 1 (long-term): ", result["long_capacities"],
          f"-> {result['long_fibers']} fibers")

    # Fig. 1(a): both links at 100G, six fibers.
    assert result["short_capacities"] == {"link1": 100.0, "link2": 100.0}
    assert result["short_fibers"] == 6
    # Fig. 1(b): plan (1, 3), five fibers.
    assert result["long_capacities"]["link1"] == 100.0
    assert result["long_capacities"]["link3"] == 100.0
    assert result["long_capacities"]["link2"] == 0.0
    assert result["long_fibers"] == 5
