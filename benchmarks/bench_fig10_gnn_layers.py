"""Figure 10: impact of the number of GNN layers (0 / 2 / 4).

Paper shape: the MLP-only agent (0 layers) handles only the easiest
variant (A-1); 2 and 4 GNN layers converge on all of A-0, A-0.5, A-1
with similar first-stage cost.
"""

from repro.experiments import fig10_gnn_layers


def test_fig10_gnn_layers(benchmark, save_rows, profile_name):
    rows = benchmark.pedantic(
        fig10_gnn_layers.run,
        kwargs={"profile": profile_name},
        rounds=1,
        iterations=1,
    )
    save_rows("fig10", rows)

    problems = fig10_gnn_layers.expected_shape(rows)
    assert problems == [], problems

    # Every GNN-bearing configuration converges.
    for row in rows:
        if row.gnn_layers > 0:
            assert row.converged, f"{row.variant} @ {row.gnn_layers} layers"

    # 2-layer and 4-layer costs stay in the same ballpark per variant
    # (the paper: "two or four layers of GNN have similar results").
    by_variant = {}
    for row in rows:
        if row.gnn_layers in (2, 4) and row.normalized_cost is not None:
            by_variant.setdefault(row.variant, []).append(row.normalized_cost)
    for variant, costs in by_variant.items():
        assert max(costs) <= min(costs) * 2.0, variant
