"""Figure 11: impact of the MLP hidden size.

(a) hidden sizes from 16x16 to 512x512 converge to similar first-stage
cost on A-0 / A-0.5 / A-1; (b) larger hidden sizes converge faster on
A-1 (epoch-reward curves, saved alongside the cost rows).
"""

from repro.experiments import fig11_mlp_hidden

HIDDEN = {
    "quick": ((16, 16), (64, 64), (256, 256)),
    "standard": ((16, 16), (64, 64), (256, 256), (512, 512)),
    "full": ((16, 16), (64, 64), (256, 256), (512, 512)),
}


def test_fig11_mlp_hidden(benchmark, save_rows, profile_name):
    hidden = HIDDEN.get(profile_name, HIDDEN["quick"])
    rows = benchmark.pedantic(
        fig11_mlp_hidden.run,
        kwargs={"profile": profile_name, "hidden_choices": hidden},
        rounds=1,
        iterations=1,
    )
    save_rows("fig11", rows)

    problems = fig11_mlp_hidden.expected_shape(rows)
    assert problems == [], problems

    # Panel (b): the A-1 reward curves exist for every hidden size.
    a1 = [r for r in rows if r.variant.endswith("-1")]
    assert len(a1) == len(hidden)
    for row in a1:
        assert len(row.epoch_rewards) >= 1
