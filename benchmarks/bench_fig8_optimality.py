"""Figure 8: optimality for small-scale problems (A-0 .. A-1, alpha=2).

Paper shape: the First-stage plan is already close to optimal when the
starting capacity is high (A-0.75, A-1) and within ~1.3x from scratch
(A-0); after the second stage NeuroPlan lands within ~2% of the ILP
optimum everywhere.  With the quick profile's tiny training budget the
first-stage gap at A-0 is larger, but the orderings and the
near-optimal second stage reproduce.
"""

from repro.experiments import fig8_optimality


def test_fig8_optimality(benchmark, save_rows, profile_name):
    rows = benchmark.pedantic(
        fig8_optimality.run,
        kwargs={"profile": profile_name},
        rounds=1,
        iterations=1,
    )
    save_rows("fig8", rows)

    problems = fig8_optimality.expected_shape(rows)
    assert problems == [], problems

    # First-stage quality improves monotonically-ish with the starting
    # capacity: A-1 must be the easiest, A-0 the hardest.
    first = {r.variant: r.first_stage_normalized for r in rows}
    assert first["A-1"] <= first["A-0"] + 1e-6

    # NeuroPlan is near-optimal on every variant.
    for row in rows:
        assert 1.0 - 1e-9 <= row.neuroplan_normalized <= 1.25
