"""Ablation: rollout-collection throughput vs worker count (fig9-style).

The paper's Fig. 9 scalability story assumes trajectories are gathered
from many environment replicas at once; this benchmark measures exactly
that axis for ``repro.rl.rollouts``: steps/second of the serial backend
vs the multiprocessing pool at 1, 2 and 4 workers, on one topology-A
environment whose step cost is dominated by the stateful failure
checker.

Recorded per row: wall-clock seconds, steps/sec, speedup vs serial, and
the host's CPU count — speedups are only asserted when the host
actually has the cores to deliver them (a 1-core container can at best
break even, and the pool's pickle/transfer overhead is the honest
price the JSON then shows).
"""

import os

from repro.experiments.scaling import get_profile
from repro.rl.env import PlanningEnv
from repro.rl.policy import ActorCriticPolicy
from repro.rl.rollouts import ParallelRolloutCollector, SerialRolloutCollector
from repro.seeding import as_generator
from repro.topology import generators

WORKER_COUNTS = (1, 2, 4)

# Collection budget per measured round, by bench profile.
BUDGETS = {"quick": 160, "standard": 512, "full": 1536}
MAX_TRAJECTORY = 48


def build_env_policy():
    profile = get_profile("quick")
    instance = generators.make_instance(
        "A", seed=profile.seed, scale=0.7, horizon="short"
    )
    env = PlanningEnv(instance, max_units_per_step=2, max_steps=MAX_TRAJECTORY)
    policy = ActorCriticPolicy(feature_dim=1, max_units=2, rng=0)
    return env, policy


def timed_collect(collector, budget, epochs=2):
    """Collect ``epochs`` rounds; return (seconds, steps, reward_stream)."""
    import time

    rewards = []
    steps = 0
    start = time.perf_counter()
    for epoch in range(epochs):
        batch = collector.collect(
            budget=budget, max_trajectory_length=MAX_TRAJECTORY, epoch=epoch
        )
        steps += batch.num_steps
        rewards.extend(t.reward for f in batch.fragments for t in f.transitions)
    return time.perf_counter() - start, steps, rewards


def run_scaling() -> list:
    profile_name = os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")
    budget = BUDGETS.get(profile_name, BUDGETS["quick"])
    cpu_count = os.cpu_count() or 1
    rows = []

    env, policy = build_env_policy()
    serial = SerialRolloutCollector(env, policy, as_generator(0))
    serial_seconds, serial_steps, _ = timed_collect(serial, budget)
    rows.append(
        {
            "backend": "serial",
            "workers": 1,
            "seconds": serial_seconds,
            "steps": serial_steps,
            "steps_per_sec": serial_steps / serial_seconds,
            "speedup_vs_serial": 1.0,
            "cpu_count": cpu_count,
        }
    )

    reward_streams = {}
    for workers in WORKER_COUNTS:
        env, policy = build_env_policy()
        with ParallelRolloutCollector(
            env, policy, num_workers=workers, seed=0
        ) as collector:
            # Warm the pool so fork/spawn cost is not billed to the
            # measured rounds.
            collector.collect(budget=workers, max_trajectory_length=4, epoch=999)
            seconds, steps, rewards = timed_collect(collector, budget)
        reward_streams[workers] = rewards
        rows.append(
            {
                "backend": "parallel",
                "workers": workers,
                "seconds": seconds,
                "steps": steps,
                "steps_per_sec": steps / seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "cpu_count": cpu_count,
            }
        )

    # The determinism contract, checked on the real workload: the merged
    # reward stream is bitwise identical for every worker count.
    for workers in WORKER_COUNTS[1:]:
        assert reward_streams[workers] == reward_streams[WORKER_COUNTS[0]], (
            f"reward stream diverged between 1 and {workers} workers"
        )
    return rows


def test_ablation_rollout_workers(benchmark, save_rows):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    save_rows("ablation_rollout_workers", rows)
    print("\nAblation (rollout collection scaling):")
    for row in rows:
        print(
            f"  {row['backend']:>8} x{row['workers']}: "
            f"{row['steps_per_sec']:8.1f} steps/s "
            f"(speedup {row['speedup_vs_serial']:.2f})"
        )

    by_workers = {r["workers"]: r for r in rows if r["backend"] == "parallel"}
    serial_row = next(r for r in rows if r["backend"] == "serial")
    assert serial_row["steps"] == by_workers[4]["steps"]

    cpu_count = serial_row["cpu_count"]
    if cpu_count >= 4:
        # With real cores behind the pool, 4 workers must beat serial.
        assert by_workers[4]["speedup_vs_serial"] > 1.2, (
            f"4-worker collection not faster on a {cpu_count}-core host: "
            f"{by_workers[4]['speedup_vs_serial']:.2f}x"
        )
    if cpu_count >= 2:
        assert by_workers[2]["speedup_vs_serial"] > 1.0, (
            f"2-worker collection not faster on a {cpu_count}-core host: "
            f"{by_workers[2]['speedup_vs_serial']:.2f}x"
        )