"""Hot-path micro-benchmarks: evaluator check, solver bound updates, GNN, mask.

Measures the four paths PR 5 vectorized, each against its legacy
formulation, and writes machine-readable rows to
``benchmarks/results/hotpath.json`` (keyed by profile, merged across
runs so the committed file can carry both the CI ``quick`` section and
the headline ``full`` section):

- **evaluator**: ``FeasibilityChecker.check`` latency over a growing
  capacity trajectory, persistent-HiGHS backend vs the stateless
  ``linprog`` backend (the pre-PR hot path).  Also records the exact LP
  solve count and a verdict fingerprint — both backends must agree.
- **solver**: row/variable bound-update throughput, one ``set_rhs`` /
  ``set_bounds`` call per cell vs the bulk ``set_row_ubs`` /
  ``set_var_ubs`` APIs.
- **gnn**: GCN encoder forward+backward at n in {64, 256, 1024}, dense
  adjacency vs cached CSR propagation.
- **mask**: ``PlanningEnv.action_mask`` vs the per-link Python loop it
  replaced.

Usage::

    python benchmarks/bench_hotpath.py [--profile quick|standard|full]
        [--quick] [--no-save]

``check_regression.py --hotpath`` gates CI on the committed rows: exact
``lp_solves`` / fingerprints, and speedups within tolerance.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "hotpath.json"

# (band, scale) pairs per profile; the last entry is the largest
# topology (the headline evaluator speedup and the mask benchmark).
EVAL_MATRIX = {
    "quick": [("A", 0.7), ("C", 0.5)],
    "standard": [("A", 0.7), ("C", 0.7), ("D", 0.7)],
    "full": [("C", 1.0), ("E", 1.0)],
}
EVAL_CHECKS = {"quick": 30, "standard": 30, "full": 24}
SOLVER_ROWS = {"quick": 2000, "standard": 5000, "full": 20000}
SOLVER_ROUNDS = {"quick": 30, "standard": 30, "full": 20}
GNN_REPS = {"quick": 5, "standard": 10, "full": 20}
MASK_REPS = {"quick": 50, "standard": 100, "full": 100}


def _median_ms(samples: "list[float]") -> float:
    return statistics.median(samples) * 1000.0


# ----------------------------------------------------------------------
# Evaluator check() latency: persistent backend vs linprog backend
# ----------------------------------------------------------------------
# During training the evaluator re-checks the currently *binding*
# failure on every env step (neuroplan mode fronts the last violation),
# and the binding failure only shifts occasionally as capacity grows.
# The trajectory below replays that: blocks of BINDING_BLOCK checks per
# failure with two links grown between checks.  Warm-basis reuse is
# what the persistent backend buys on exactly this pattern; alternating
# a fresh failure every check is the (unrepresentative) worst case.
BINDING_BLOCK = 8


def bench_evaluator(profile: str) -> "list[dict]":
    from repro.evaluator.feasibility import FeasibilityChecker
    from repro.topology import generators

    rows = []
    for band, scale in EVAL_MATRIX[profile]:
        instance = generators.make_instance(band, seed=0, scale=scale)
        num_checks = EVAL_CHECKS[profile]

        def run(backend: str):
            os.environ["NEUROPLAN_LP_BACKEND"] = backend
            try:
                checker = FeasibilityChecker(instance)
            finally:
                os.environ.pop("NEUROPLAN_LP_BACKEND", None)
            capacities = instance.network.capacities()
            failures = list(instance.failures)
            link_ids = instance.network.link_ids()
            rng = np.random.default_rng(0)
            latencies, verdicts = [], []
            for index in range(num_checks):
                failure = failures[(index // BINDING_BLOCK) % len(failures)]
                start = time.perf_counter()
                result = checker.check(capacities, failure)
                latencies.append(time.perf_counter() - start)
                verdicts.append(bool(result.satisfied))
                # Grow a couple of links between checks, as the RL env does.
                for position in rng.choice(len(link_ids), size=2, replace=False):
                    capacities[link_ids[position]] += instance.capacity_unit
            return latencies, verdicts, checker.lp_solves

        legacy_lat, legacy_verdicts, legacy_solves = run("linprog")
        new_lat, new_verdicts, new_solves = run("persistent")
        if new_verdicts != legacy_verdicts or new_solves != legacy_solves:
            raise AssertionError(
                f"backend divergence on {band}@{scale}: "
                f"verdicts {new_verdicts == legacy_verdicts}, "
                f"solves {legacy_solves} vs {new_solves}"
            )
        fingerprint = hashlib.sha256(
            json.dumps(legacy_verdicts).encode()
        ).hexdigest()[:16]
        # Skip the first check in each run: it pays one-time compilation.
        legacy_ms = _median_ms(legacy_lat[1:])
        new_ms = _median_ms(new_lat[1:])
        rows.append(
            {
                "section": "evaluator",
                "key": f"{band}@{scale}",
                "legacy_ms": round(legacy_ms, 4),
                "new_ms": round(new_ms, 4),
                "speedup": round(legacy_ms / new_ms, 3),
                "lp_solves": legacy_solves,
                "fingerprint": fingerprint,
            }
        )
        print(
            f"  evaluator {band}@{scale}: linprog {legacy_ms:.2f}ms -> "
            f"persistent {new_ms:.2f}ms ({rows[-1]['speedup']:.2f}x, "
            f"{legacy_solves} LP solves)"
        )
    return rows


# ----------------------------------------------------------------------
# Solver bound-update throughput: per-cell loop vs bulk APIs
# ----------------------------------------------------------------------
def bench_solver(profile: str) -> "list[dict]":
    from repro.solver import Model

    n = SOLVER_ROWS[profile]
    rounds = SOLVER_ROUNDS[profile]
    model = Model("bench-bounds", lp_backend="linprog")
    variables = [model.add_var(ub=1.0) for _ in range(n)]
    constraints = [model.add_constr(v <= 1.0) for v in variables]

    rows = []
    for key, loop_fn, bulk_fn in (
        (
            "rows",
            lambda values: [
                c.set_rhs(ub=v) for c, v in zip(constraints, values)
            ],
            lambda values: model.set_row_ubs(constraints, values),
        ),
        (
            "vars",
            lambda values: [
                var.set_bounds(ub=v) for var, v in zip(variables, values)
            ],
            lambda values: model.set_var_ubs(variables, values),
        ),
    ):
        loop_times, bulk_times = [], []
        for round_index in range(rounds):
            values = np.full(n, 1.0 + round_index)
            start = time.perf_counter()
            loop_fn(values)
            loop_times.append(time.perf_counter() - start)
            values = values + 0.5
            start = time.perf_counter()
            bulk_fn(values)
            bulk_times.append(time.perf_counter() - start)
        loop_rate = n / statistics.median(loop_times)
        bulk_rate = n / statistics.median(bulk_times)
        rows.append(
            {
                "section": "solver",
                "key": key,
                "loop_updates_per_s": round(loop_rate),
                "bulk_updates_per_s": round(bulk_rate),
                "speedup": round(bulk_rate / loop_rate, 3),
            }
        )
        print(
            f"  solver {key}: loop {loop_rate:,.0f}/s -> bulk "
            f"{bulk_rate:,.0f}/s ({rows[-1]['speedup']:.2f}x, n={n})"
        )
    return rows


# ----------------------------------------------------------------------
# GNN forward+backward: dense adjacency vs cached CSR
# ----------------------------------------------------------------------
def bench_gnn(profile: str) -> "list[dict]":
    from repro.nn.gnn import (
        GraphEncoder,
        normalized_adjacency,
        normalized_adjacency_sparse,
    )
    from repro.nn.tensor import Tensor

    reps = GNN_REPS[profile]
    rows = []
    for n in (64, 256, 1024):
        rng = np.random.default_rng(1)
        # ~6 neighbors per node, symmetric, no self edges.
        upper = np.triu(rng.random((n, n)) < 3.0 / n, k=1).astype(np.float64)
        adjacency = upper + upper.T
        dense = normalized_adjacency(adjacency)
        sparse = normalized_adjacency_sparse(adjacency)
        features = rng.standard_normal((n, 4))
        encoder = GraphEncoder(4, 16, num_layers=2, gnn_type="gcn", rng=0)

        def run(operand):
            times = []
            for _ in range(reps):
                start = time.perf_counter()
                out = encoder(Tensor(features), operand)
                out.sum().backward()
                times.append(time.perf_counter() - start)
                encoder.zero_grad()
            return _median_ms(times)

        dense_ms = run(dense)
        sparse_ms = run(sparse)
        rows.append(
            {
                "section": "gnn",
                "key": f"n={n}",
                "dense_ms": round(dense_ms, 4),
                "sparse_ms": round(sparse_ms, 4),
                "speedup": round(dense_ms / sparse_ms, 3),
            }
        )
        print(
            f"  gnn n={n}: dense {dense_ms:.2f}ms -> sparse "
            f"{sparse_ms:.2f}ms ({rows[-1]['speedup']:.2f}x fwd+bwd)"
        )
    return rows


# ----------------------------------------------------------------------
# Action mask: vectorized SpectrumIndex vs the per-link loop
# ----------------------------------------------------------------------
def bench_mask(profile: str) -> "list[dict]":
    from repro.rl.env import PlanningEnv
    from repro.topology import generators

    band, scale = EVAL_MATRIX[profile][-1]
    instance = generators.make_instance(band, seed=0, scale=scale)
    env = PlanningEnv.__new__(PlanningEnv)  # skip evaluator/reward probe
    from repro.topology.spectrum import SpectrumIndex
    from repro.topology.transform import node_link_transform

    env.instance = instance
    env.max_units = 4
    env.link_graph = node_link_transform(instance.network)
    env.unit = instance.capacity_unit
    env._spectrum = SpectrumIndex(instance.network)
    env._capacities = instance.network.capacities()

    def legacy_mask() -> np.ndarray:
        mask = np.zeros(env.num_actions, dtype=bool)
        for link_index, link_id in enumerate(env.link_graph.link_ids):
            headroom_units = int(
                np.floor(
                    round(
                        instance.network.link_capacity_headroom(
                            link_id, env._capacities
                        )
                        / env.unit,
                        9,
                    )
                )
            )
            allowed = min(headroom_units, env.max_units)
            base = link_index * env.max_units
            mask[base : base + allowed] = True
        return mask

    reps = MASK_REPS[profile]
    legacy_times, new_times = [], []
    for _ in range(reps):
        start = time.perf_counter()
        reference = legacy_mask()
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        vectorized = env.action_mask()
        new_times.append(time.perf_counter() - start)
        if not np.array_equal(reference, vectorized):
            raise AssertionError("vectorized mask diverged from the reference")
    legacy_ms = _median_ms(legacy_times)
    new_ms = _median_ms(new_times)
    row = {
        "section": "mask",
        "key": f"{band}@{scale}",
        "legacy_ms": round(legacy_ms, 4),
        "new_ms": round(new_ms, 4),
        "speedup": round(legacy_ms / new_ms, 3),
    }
    print(
        f"  mask {band}@{scale}: loop {legacy_ms:.3f}ms -> vectorized "
        f"{new_ms:.3f}ms ({row['speedup']:.2f}x)"
    )
    return [row]


# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", default="quick", choices=("quick", "standard", "full")
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --profile quick (the CI smoke invocation)",
    )
    parser.add_argument(
        "--no-save",
        action="store_true",
        help="print results without touching results/hotpath.json",
    )
    args = parser.parse_args(argv)
    profile = "quick" if args.quick else args.profile

    print(f"hot-path benchmarks at profile={profile}")
    rows = []
    rows += bench_evaluator(profile)
    rows += bench_solver(profile)
    rows += bench_gnn(profile)
    rows += bench_mask(profile)

    if not args.no_save:
        existing = {}
        if RESULTS_PATH.exists():
            existing = json.loads(RESULTS_PATH.read_text())
        existing[profile] = rows
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(existing, indent=1))
        print(f"saved {len(rows)} rows to {RESULTS_PATH} (profile={profile})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
