"""Solver-farm drift benchmark: cold plan vs warm replan vs cache hit.

The workload is the multi-period growth schedule from the
``multi-period-growth`` scenario generator: a sequence of cumulative
demand matrices ``D_1 <= D_2 <= ... <= D_T`` over the band-A baseline.
Each period is planned three ways:

- **cold plan** -- the pre-farm behavior: build a fresh environment on
  the drifted instance (full LP compile) and roll the policy out from
  scratch;
- **warm replan** -- ``service.replan`` with the previous period's plan
  as the prior: the leased persistent backend absorbs the drift as a
  pure bound swap and the rollout resumes from the prior plan;
- **cache hit** -- the same replan repeated, answered by the
  solver-layer rollout/feasibility cache.

Every period asserts the warm plan is *identical* to the cold plan (the
replan-equivalence anchor, enforced again by the regression gate), so
the speedup is never bought with a different answer.  The committed
summary row carries ``warm_speedup`` (cold/warm wall-clock over the
drift stream), which ``check_regression.py --solverfarm`` holds to the
>= 3x acceptance floor.
"""

import os
import time
from dataclasses import replace

from repro.rl.a2c import A2CConfig
from repro.rl.agent import AgentConfig, NeuroPlanAgent, greedy_rollout
from repro.rl.env import PlanningEnv
from repro.scenarios.multiperiod import growth_schedule
from repro.serve import (
    ModelKey,
    ModelStore,
    PlanningService,
    ReplanRequest,
    ServiceConfig,
)
from repro.topology import generators

TOPOLOGY = "A"
SCALE = 0.5
MAX_STEPS = 96
MAX_UNITS = 2

# Periods in the drift stream, by bench profile.
PROFILES = {"quick": 4, "standard": 8, "full": 12}


def _profile_name() -> str:
    return os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")


def build_model_store(tmp_root: str) -> str:
    """Train one tiny policy and publish it; return the store root."""
    instance = generators.make_instance(
        TOPOLOGY, seed=0, scale=SCALE, horizon="short"
    )
    agent = NeuroPlanAgent(
        instance,
        AgentConfig(
            max_units_per_step=MAX_UNITS,
            max_steps=MAX_STEPS,
            a2c=A2CConfig(
                epochs=2, steps_per_epoch=48, max_trajectory_length=MAX_STEPS, seed=0
            ),
        ),
    )
    agent.train()
    ModelStore(tmp_root).publish(
        agent.policy,
        key=ModelKey(TOPOLOGY, SCALE, "short"),
        agent_kwargs={
            "max_units_per_step": MAX_UNITS,
            "max_steps": MAX_STEPS,
            "evaluator_mode": "neuroplan",
            "feature_set": "capacity",
        },
        source={"algo": "a2c", "bench": "solverfarm"},
    )
    return tmp_root


def drift_spec(traffic) -> dict:
    """A period's cumulative demand matrix as a replan drift spec."""
    return {
        "flows": [
            {
                "src": f.src,
                "dst": f.dst,
                "cos": f.cos.name,
                "demand": f.demand,
            }
            for f in traffic
        ]
    }


def cold_plan(agent, drifted_traffic):
    """The pre-farm baseline: fresh env (LP compile) + cold rollout."""
    instance = replace(agent.instance, traffic=drifted_traffic)
    started = time.perf_counter()
    env = PlanningEnv(instance, **agent.env.replica_kwargs())
    plan = greedy_rollout(env, agent.policy)
    return plan, time.perf_counter() - started


def run_drift(profile: "str | None" = None, tmp_root: "str | None" = None) -> list:
    """The drift stream; returns per-period rows plus a summary row."""
    periods = PROFILES[profile or _profile_name()]
    if tmp_root is None:
        import tempfile

        tmp_root = tempfile.mkdtemp(prefix="bench-solverfarm-")
    model_dir = build_model_store(tmp_root)

    service = PlanningService(
        model_dir,
        ServiceConfig(workers=2, queue_depth=16, pipeline="farm"),
    )
    # The reference agent for the cold baseline (one checkpoint load,
    # shared policy -- only the per-period env build is measured).
    agent, _ = service.registry.agent(
        ModelKey(TOPOLOGY, SCALE, "short"), seed=0
    )
    schedule = growth_schedule(agent.instance.traffic, periods=periods, seed=0)
    # Warm the farm's backend outside the measured stream (the pool
    # build is a once-per-signature cost, the cold path pays its env
    # build every period by design).
    service.plan(
        ReplanRequest(topology=TOPOLOGY, scale=SCALE, seed=0, no_cache=True)
    )

    rows = []
    prior_plan = None
    prior_spec = None
    for period, traffic in enumerate(schedule):
        spec = drift_spec(traffic)
        cold, cold_s = cold_plan(agent, traffic)

        request = ReplanRequest(
            topology=TOPOLOGY,
            scale=SCALE,
            seed=0,
            horizon="short",
            demands=spec,
            prior_plan=prior_plan,
            prior_demands=prior_spec,
            no_cache=True,
        )
        started = time.perf_counter()
        warm = service.replan(request)
        warm_s = time.perf_counter() - started

        started = time.perf_counter()
        hit = service.replan(request)
        hit_s = time.perf_counter() - started

        assert warm["plan"] == cold.capacities, (
            f"period {period}: warm replan diverged from the cold plan"
        )
        assert hit["plan"] == cold.capacities
        rows.append(
            {
                "period": period,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "hit_s": hit_s,
                "cold_steps": cold.metadata["steps"],
                "warm_start": warm["replan"]["warm_start"],
                "prior_verified": warm["replan"]["prior_verified"],
                "hit_cached": hit["solver_cache"]["rollout"],
                "plans_match": True,
            }
        )
        prior_plan = warm["plan"]
        prior_spec = spec
    farm_stats = service.metrics()["solverfarm"]
    service.close()

    # Period 0 has no prior (cold on both sides); the speedup summary is
    # over the true replan periods 1..T-1.
    replans = rows[1:]
    cold_total = sum(r["cold_s"] for r in replans)
    warm_total = sum(r["warm_s"] for r in replans)
    hit_total = sum(r["hit_s"] for r in replans)
    rows.append(
        {
            "period": "summary",
            "profile": profile or _profile_name(),
            "periods": periods,
            "cold_total_s": cold_total,
            "warm_total_s": warm_total,
            "hit_total_s": hit_total,
            "warm_speedup": cold_total / warm_total,
            "hit_speedup": cold_total / hit_total,
            "warm_starts": sum(1 for r in replans if r["warm_start"]),
            "plans_match": all(r["plans_match"] for r in rows[:-1] if "plans_match" in r),
            "rollout_cache": {
                "hits": farm_stats["cache"]["rollout"]["hits"],
                "misses": farm_stats["cache"]["rollout"]["misses"],
            },
        }
    )
    return rows


def test_bench_solverfarm(benchmark, save_rows, tmp_path):
    rows = benchmark.pedantic(
        run_drift, args=(None, str(tmp_path)), rounds=1, iterations=1
    )
    save_rows("solverfarm", rows)
    summary = rows[-1]
    print("\nSolver-farm drift stream (cold plan vs warm replan vs cache hit):")
    for row in rows[:-1]:
        print(
            f"  period {row['period']}: cold {row['cold_s'] * 1e3:7.1f} ms  "
            f"warm {row['warm_s'] * 1e3:7.1f} ms  "
            f"hit {row['hit_s'] * 1e3:6.2f} ms  "
            f"(warm_start={row['warm_start']})"
        )
    print(
        f"  summary: warm replan {summary['warm_speedup']:.1f}x, "
        f"cache hit {summary['hit_speedup']:.1f}x over cold"
    )

    # Every period's warm plan equalled the cold plan (asserted inline),
    # every true replan warm-started off a verified prior, and the
    # repeat request was served by the solver-layer cache.
    assert summary["plans_match"] is True
    assert summary["warm_starts"] == summary["periods"] - 1
    for row in rows[1:-1]:
        assert row["prior_verified"] is True
        assert row["hit_cached"] is True
    # The acceptance floor (also enforced by check_regression.py
    # --solverfarm against the committed baseline): warm replanning is
    # at least 3x faster than planning each drifted period cold.
    assert summary["warm_speedup"] >= 3.0
    assert summary["hit_speedup"] >= summary["warm_speedup"]
