"""Ablation: A2C (Algorithm 1) vs PPO on the same environment.

The paper trains with the SpinningUp actor-critic; PPO is the other
standard SpinningUp algorithm and a natural question for anyone
re-implementing NeuroPlan.  Both trainers share the environment,
policy architecture, and GAE machinery, so the comparison isolates the
update rule.  The claim checked here is modest and robust: both find
feasible first-stage plans on topology A, and their best costs are in
the same ballpark.
"""

from repro.planning import GreedyPlanner
from repro.rl.a2c import A2CConfig, A2CTrainer
from repro.rl.env import PlanningEnv
from repro.rl.policy import ActorCriticPolicy
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.topology import generators

EPOCHS = 5
STEPS = 192
TRAJECTORY = 96


def run_comparison() -> dict:
    instance = generators.make_instance("A", seed=0, scale=0.7)
    greedy_cost = GreedyPlanner().plan(instance).cost(instance)

    env_a2c = PlanningEnv(instance, max_units_per_step=2, max_steps=TRAJECTORY)
    policy_a2c = ActorCriticPolicy(feature_dim=1, max_units=2, rng=0)
    a2c = A2CTrainer(
        env_a2c,
        policy_a2c,
        A2CConfig(
            epochs=EPOCHS, steps_per_epoch=STEPS,
            max_trajectory_length=TRAJECTORY, seed=0,
        ),
    ).train()

    env_ppo = PlanningEnv(instance, max_units_per_step=2, max_steps=TRAJECTORY)
    policy_ppo = ActorCriticPolicy(feature_dim=1, max_units=2, rng=0)
    ppo = PPOTrainer(
        env_ppo,
        policy_ppo,
        PPOConfig(
            epochs=EPOCHS, steps_per_epoch=STEPS,
            max_trajectory_length=TRAJECTORY, seed=0,
        ),
    ).train()

    return {
        "greedy_cost": greedy_cost,
        "a2c_best_cost": a2c.best_cost if a2c.converged else None,
        "ppo_best_cost": ppo.best_cost if ppo.converged else None,
        "a2c_seconds": a2c.train_seconds,
        "ppo_seconds": ppo.train_seconds,
    }


def test_ablation_a2c_vs_ppo(benchmark, save_rows):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_rows("ablation_rl_algorithms", [result])
    print("\nAblation (A2C vs PPO):", result)

    assert result["a2c_best_cost"] is not None, "A2C did not converge"
    assert result["ppo_best_cost"] is not None, "PPO did not converge"
    # Both beat blind worst-case provisioning.
    assert result["a2c_best_cost"] < result["greedy_cost"]
    assert result["ppo_best_cost"] < result["greedy_cost"]
    # Same ballpark (loose: different update rules, tiny budget).
    ratio = result["a2c_best_cost"] / result["ppo_best_cost"]
    assert 1 / 3 <= ratio <= 3
