"""Ablations for the design choices DESIGN.md calls out.

Not figures from the paper, but the knobs its design sections argue
for; each ablation exercises one claim:

1. **Node-link transformation parallel rule** (Section 4.2 / Fig. 5):
   parallel links must *not* be connected in the transformed graph.
   The ablation verifies the structural difference and that both
   variants train (the rule is about learning efficiency, not
   trainability).
2. **Warm start** (Section 3.2, long-term planning): feeding the ILP a
   known-feasible plan as an objective cutoff never worsens the
   optimum and often speeds up branch-and-bound.
3. **Decomposition** (Section 3.2): per-region ILPs + greedy seams land
   between greedy and the full ILP on cost.
4. **Parallel failure checking** (Section 5): group-parallel stateful
   checking returns the same verdicts as serial checking.
"""

import time

import numpy as np

from repro.evaluator import ParallelFailureChecker, PlanEvaluator
from repro.planning import (
    DecompositionPlanner,
    GreedyPlanner,
    ILPPlanner,
)
from repro.rl.a2c import A2CConfig
from repro.rl.agent import AgentConfig, NeuroPlanAgent
from repro.topology import generators
from repro.topology.transform import node_link_transform


def test_ablation_parallel_link_rule(benchmark, save_rows):
    """Dropping the parallel-link exception adds edges; both train."""

    def run():
        instance = generators.make_instance("A", seed=0, scale=0.7)
        paper_graph = node_link_transform(instance.network)
        naive_graph = node_link_transform(instance.network, connect_parallel=True)
        config = AgentConfig(
            max_units_per_step=2,
            max_steps=96,
            a2c=A2CConfig(
                epochs=3, steps_per_epoch=128, max_trajectory_length=96, seed=0
            ),
        )
        result = NeuroPlanAgent(instance, config).train()
        return {
            "paper_edges": int(paper_graph.adjacency.sum() // 2),
            "naive_edges": int(naive_graph.adjacency.sum() // 2),
            "paper_rule_trains": result.best_capacities is not None,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows("ablation_parallel_rule", [result])
    print("\nAblation (node-link transform):", result)
    assert result["naive_edges"] > result["paper_edges"]
    assert result["paper_rule_trains"]


def test_ablation_warm_start(benchmark, save_rows):
    """A greedy warm start never worsens the pruned-ILP optimum."""

    def run():
        instance = generators.make_instance("A", seed=0, scale=0.7)
        greedy = GreedyPlanner().plan(instance)
        cold_start = time.perf_counter()
        cold = ILPPlanner(time_limit=120).plan(instance)
        cold_seconds = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm = ILPPlanner(time_limit=120).plan(
            instance, warm_start=greedy.capacities
        )
        warm_seconds = time.perf_counter() - warm_start
        return {
            "cold_cost": cold.plan.cost(instance),
            "warm_cost": warm.plan.cost(instance),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows("ablation_warm_start", [result])
    print("\nAblation (warm start):", result)
    assert result["warm_cost"] <= result["cold_cost"] + 1e-6


def test_ablation_decomposition(benchmark, save_rows):
    """Decomposition lands between greedy and the full ILP."""

    def run():
        instance = generators.make_instance("B", seed=0, scale=0.5)
        greedy_cost = GreedyPlanner().plan(instance).cost(instance)
        decomposed = DecompositionPlanner(num_regions=2, ilp_time_limit=60).plan(
            instance
        )
        ilp = ILPPlanner(time_limit=120).plan(instance)
        feasible = PlanEvaluator(instance, mode="sa").evaluate(
            decomposed.capacities
        ).feasible
        return {
            "greedy_cost": greedy_cost,
            "decomposition_cost": decomposed.cost(instance),
            "ilp_cost": ilp.plan.cost(instance) if ilp.plan else None,
            "decomposition_feasible": feasible,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows("ablation_decomposition", [result])
    print("\nAblation (decomposition):", result)
    assert result["decomposition_feasible"]
    assert result["decomposition_cost"] <= result["greedy_cost"] + 1e-6
    if result["ilp_cost"] is not None:
        assert result["decomposition_cost"] >= result["ilp_cost"] - 1e-6


def test_ablation_parallel_failure_checking(benchmark, save_rows):
    """Group-parallel checking agrees with serial on random plans."""

    def run():
        instance = generators.make_instance("B", seed=0, scale=0.5)
        serial = PlanEvaluator(instance, mode="sa")
        rng = np.random.default_rng(0)
        agreements = 0
        trials = 6
        with ParallelFailureChecker(instance, groups=3) as parallel:
            for _ in range(trials):
                bump = rng.integers(0, 30, size=len(instance.network.links))
                capacities = {
                    lid: link.capacity + int(b) * instance.capacity_unit
                    for (lid, link), b in zip(
                        instance.network.links.items(), bump
                    )
                }
                parallel.reset()
                parallel_verdict = parallel.check(capacities) is None
                serial_verdict = serial.evaluate(capacities).feasible
                agreements += parallel_verdict == serial_verdict
        return {"agreements": agreements, "trials": trials}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows("ablation_parallel_checking", [result])
    print("\nAblation (parallel failure checking):", result)
    assert result["agreements"] == result["trials"]
