"""Table 2: the NeuroPlan hyperparameters.

Regenerates the paper's hyperparameter table from the code's presets,
proving the implementation's defaults and sweep grids match what the
paper reports.
"""

from repro.core.presets import table2_rows


def test_table2_hyperparameters(benchmark, save_rows):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    save_rows("table2", [{"hyperparameter": n, "value": v} for n, v in rows])

    print("\nTable 2: NeuroPlan hyperparameters")
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"  {name:<{width}}  {value}")

    assert len(rows) == 13
    values = dict(rows)
    assert values["Actor learning rate"] == "0.0003"
    assert values["Critic learning rate"] == "0.001"
    assert values["Discount factor gamma"] == "0.99"
    assert values["GAE Lambda lambda"] == "0.97"
    assert values["Max capacity units per step"] == "{1, 4, 16}"
    assert values["Relax factor alpha"] == "{1.0, 1.25, 1.5, 2.0}"
