"""Scenario-zoo baselines: every planner on every registered scenario.

Each (scenario, method, seed) cell runs the planner, scores the plan
with the standalone verifier, and records the *verifier's* re-derived
cost -- the committed ``results/scenarios.json`` is therefore a
planner-independent ground truth that ``check_regression.py
--scenarios`` can gate against: greedy and ILP-heur costs must match
exactly (both are deterministic), the exact ILP must stay optimal
within float tolerance, and every cell must stay verifier-feasible.
"""

import os

import repro.scenarios as zoo

PROFILES = {
    "quick": {"seeds": (0,)},
    "standard": {"seeds": (0, 1)},
    "full": {"seeds": (0, 1)},
}


def run_scenarios(profile: str) -> list[dict]:
    seeds = PROFILES[profile]["seeds"]
    return zoo.baseline_table(seeds=seeds)


def test_scenario_baselines(benchmark, save_rows, profile_name):
    rows = benchmark.pedantic(
        run_scenarios, args=(profile_name,), rounds=1, iterations=1
    )
    save_rows("scenarios", rows)

    print()
    for row in rows:
        print(
            f"{row['scenario']:<16} {row['method']:<9} seed={row['seed']} "
            f"verifier_cost={row['verifier_cost']:,.0f} "
            f"({row['checked_failures']} failures, {row['solve_seconds']:.1f}s)"
        )

    by_cell = {(r["scenario"], r["method"], r["seed"]): r for r in rows}
    for row in rows:
        assert row["feasible"], (row["scenario"], row["method"], row["seed"])
        assert row["cost_agrees"], (row["scenario"], row["method"], row["seed"])
    # The optimality ordering the paper's evaluation relies on.
    for (scenario, method, seed), row in by_cell.items():
        if method != "ilp":
            continue
        for heuristic in ("greedy", "ilp-heur"):
            other = by_cell.get((scenario, heuristic, seed))
            if other is not None:
                slack = 1e-6 * max(1.0, row["verifier_cost"])
                assert row["verifier_cost"] <= other["verifier_cost"] + slack


if __name__ == "__main__":  # pragma: no cover - manual convenience
    for line in run_scenarios(os.environ.get("NEUROPLAN_BENCH_PROFILE", "quick")):
        print(line)
