"""Ablation: the stateful-checking speedup grows with trajectory length.

Fig. 7's 7-14x stateful speedup assumes production-length trajectories
(hundreds to thousands of steps).  The quick-profile replay uses tens
of steps, which compresses the ratio -- this ablation makes that
relationship measurable: replaying prefixes of increasing length of one
capacity trajectory, the SA/NeuroPlan runtime ratio must not shrink as
trajectories grow (each extra step re-checks the survived prefix under
SA but not under stateful checking).
"""

from repro.experiments.common import make_band_instance
from repro.experiments.fig7_efficiency import capacity_trajectory, replay
from repro.experiments.scaling import get_profile


def run_scaling() -> list[dict]:
    profile = get_profile("quick")
    instance = make_band_instance("B", profile)
    trajectory = capacity_trajectory(instance, rng_seed=0, max_steps=400)
    rows = []
    for fraction in (0.25, 0.5, 1.0):
        prefix = trajectory[: max(2, int(len(trajectory) * fraction))]
        sa_seconds, _ = replay(instance, prefix, "sa", time_budget=300.0)
        stateful_seconds, _ = replay(
            instance, prefix, "neuroplan", time_budget=300.0
        )
        rows.append(
            {
                "steps": len(prefix),
                "sa_seconds": sa_seconds,
                "stateful_seconds": stateful_seconds,
                "speedup": sa_seconds / stateful_seconds,
            }
        )
    return rows


def test_stateful_speedup_grows_with_trajectory_length(benchmark, save_rows):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    save_rows("ablation_stateful_scaling", rows)

    print("\nAblation (stateful speedup vs trajectory length):")
    for row in rows:
        print(
            f"  {row['steps']:>4} steps: SA {row['sa_seconds']:.2f}s, "
            f"stateful {row['stateful_seconds']:.2f}s "
            f"({row['speedup']:.1f}x)"
        )

    # Stateful always wins, and the advantage does not shrink as the
    # trajectory grows (allowing 15% measurement noise).
    speedups = [row["speedup"] for row in rows]
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] >= speedups[0] * 0.85
