#!/usr/bin/env python3
"""Multi-period planning: three cycles of 20%/year traffic growth.

The paper describes planning as an iterative process on a topology
growing ~20% per year.  Each cycle: plan with NeuroPlan, deploy the
plan (installed capacity becomes the next cycle's floor -- hardware is
never ripped out), grow the forecast, repeat.

Run:  python examples/multi_period_planning.py
"""

from repro import NeuroPlan, topologies
from repro.evaluator import PlanEvaluator
from repro.topology.evolution import evolve_instance

GROWTH_PER_CYCLE = 1.2
CYCLES = 3


def main() -> None:
    instance = topologies.make_instance("A", seed=0, scale=0.7)
    planner = NeuroPlan(
        epochs=6,
        steps_per_epoch=192,
        max_trajectory_length=96,
        max_units_per_step=2,
        relax_factor=1.5,
        ilp_time_limit=60,
        seed=0,
    )

    print(f"{'cycle':<7}{'demand Gbps':>13}{'added Gbps':>12}{'cycle cost':>14}"
          f"{'cum. capacity':>15}")
    for cycle in range(CYCLES):
        result = planner.plan(instance)
        added = result.final.total_added_gbps(instance)
        added_cost = instance.cost_model.incremental_cost(
            instance.network,
            instance.network.capacities(),
            result.final.capacities,
        )
        total_capacity = sum(result.final.capacities.values())
        print(
            f"{cycle:<7}{instance.traffic.total_demand:>13,.0f}"
            f"{added:>12,.0f}{added_cost:>14,.0f}{total_capacity:>15,.0f}"
        )

        feasible = PlanEvaluator(instance, mode="sa").evaluate(
            result.final.capacities
        ).feasible
        assert feasible, f"cycle {cycle} plan infeasible"

        instance = evolve_instance(
            instance,
            result.final.capacities,
            traffic_growth=GROWTH_PER_CYCLE,
            cycle_label=f"A-cycle{cycle + 1}",
        )

    print()
    print("Each cycle's deployed capacity becomes the next cycle's floor;")
    print("the planner only ever pays for *additions*, and the floors keep")
    print("the operational constraint (Eq. 5) satisfied across cycles.")


if __name__ == "__main__":
    main()
