#!/usr/bin/env python3
"""The operator's view: interpretability report and the alpha knob.

Section 4.3 argues the two-stage design keeps NeuroPlan interpretable:
the RL pruning strategy can be inspected before it is trusted, and the
relax factor alpha is an explicit optimality/tractability dial.  This
example trains one first-stage plan, prints the report, and sweeps
alpha to show the trade-off (Fig. 13's mechanism).

Run:  python examples/interpretability_and_alpha.py
"""


from repro import NeuroPlan, topologies
from repro.core.report import interpretability_report
from repro.core.results import PlanningResult


def main() -> None:
    instance = topologies.make_instance("B", seed=0, scale=0.5)
    print(instance.describe())

    planner = NeuroPlan(
        epochs=8,
        steps_per_epoch=256,
        max_trajectory_length=96,
        max_units_per_step=2,
        ilp_time_limit=90,
        seed=0,
    )
    first_stage, history, train_seconds = planner.first_stage(instance)
    first_cost = first_stage.cost(instance)
    print(f"first stage trained in {train_seconds:.1f}s, cost {first_cost:,.0f}")
    print()

    print(f"{'alpha':>6}{'final cost':>16}{'vs 1st stage':>14}{'ILP secs':>10}")
    best = None
    for alpha in (1.0, 1.25, 1.5, 2.0):
        planner.config.relax_factor = alpha
        final, status, ilp_seconds = planner.second_stage(instance, first_stage)
        cost = final.cost(instance)
        print(
            f"{alpha:>6}{cost:>16,.0f}{cost / first_cost:>13.1%}{ilp_seconds:>10.1f}"
        )
        if best is None or cost < best[1]:
            best = (alpha, cost, final, ilp_seconds)

    alpha, cost, final, ilp_seconds = best
    result = PlanningResult(
        instance_name=instance.name,
        first_stage=first_stage,
        final=final,
        relax_factor=alpha,
        first_stage_cost=first_cost,
        final_cost=cost,
        train_seconds=train_seconds,
        ilp_seconds=ilp_seconds,
        second_stage_status="optimal",
        epoch_history=history,
    )
    print()
    print(interpretability_report(instance, result))


if __name__ == "__main__":
    main()
