#!/usr/bin/env python3
"""Quickstart: plan a small WAN with NeuroPlan in under a minute.

Builds topology band A (a small production-like WAN), runs the
two-stage pipeline (RL first stage -> relax-factor-pruned ILP), and
compares the result against the greedy and full-ILP baselines.

Run:  python examples/quickstart.py
"""

from repro import NeuroPlan, topologies
from repro.evaluator import PlanEvaluator
from repro.planning import GreedyPlanner, ILPPlanner


def main() -> None:
    # 1. A planning instance bundles topology, traffic, failures,
    #    reliability policy and cost model (Fig. 3 of the paper).
    instance = topologies.make_instance("A", seed=0, scale=0.7)
    print(instance.describe())

    # 2. Run NeuroPlan: train a small RL agent, then let the ILP polish
    #    the plan inside the alpha-relaxed neighborhood.
    planner = NeuroPlan(
        epochs=8,
        steps_per_epoch=256,
        max_trajectory_length=64,
        max_units_per_step=2,
        relax_factor=1.5,
        ilp_time_limit=60,
        seed=0,
    )
    result = planner.plan(instance)
    print()
    print(result.summary())

    # 3. The plan is a concrete capacity assignment; verify it satisfies
    #    every failure scenario with the plan evaluator.
    evaluator = PlanEvaluator(instance, mode="sa")
    check = evaluator.evaluate(result.final.capacities)
    print(f"final plan feasible under all {len(instance.failures)} failures:",
          check.feasible)

    # 4. Compare against baselines.
    greedy = GreedyPlanner().plan(instance)
    optimum = ILPPlanner(time_limit=120).plan(instance).plan
    print()
    print(f"{'planner':<16}{'cost':>16}")
    for name, cost in [
        ("greedy", greedy.cost(instance)),
        ("first-stage RL", result.first_stage_cost),
        ("NeuroPlan", result.final_cost),
        ("full ILP (opt)", optimum.cost(instance)),
    ]:
        print(f"{name:<16}{cost:>16,.0f}")

    # 5. Render the plan to SVG (additions over the starting topology
    #    are highlighted); open neuroplan_quickstart.svg in a browser.
    from repro.topology.visualization import save_svg

    save_svg(
        instance.network,
        "neuroplan_quickstart.svg",
        capacities=result.final.capacities,
        baseline=instance.network.capacities(),
        title=f"NeuroPlan on {instance.name}",
    )
    print("\nwrote neuroplan_quickstart.svg")


if __name__ == "__main__":
    main()
