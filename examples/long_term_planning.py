#!/usr/bin/env python3
"""Long-term planning: deciding which candidate fibers to build.

Long-term planning starts candidate IP links at zero capacity over
*candidate fibers* that cost real money to build (the fiber fixed
charge of Eq. 1).  The planner decides which candidates earn their
build cost.  NeuroPlan treats candidates exactly like existing links --
the RL agent adds capacity wherever it helps, and candidates it never
touches are pruned out of the second-stage ILP.

Run:  python examples/long_term_planning.py
"""

from repro import NeuroPlan, topologies
from repro.evaluator import PlanEvaluator


def main() -> None:
    instance = topologies.make_instance("A", seed=0, scale=0.7, horizon="long")
    print(instance.describe())

    candidates = [
        link.id for link in instance.network.links.values()
        if link.id.endswith(":cand")
    ]
    print(f"candidate IP links over buildable fibers: {candidates}")
    print()

    planner = NeuroPlan(
        epochs=8,
        steps_per_epoch=256,
        max_trajectory_length=96,
        max_units_per_step=2,
        relax_factor=1.5,
        ilp_time_limit=90,
        seed=0,
    )
    result = planner.plan(instance)
    print(result.summary())
    print()

    built = [
        link_id for link_id in candidates
        if result.final.capacities[link_id] > 0
    ]
    skipped = [c for c in candidates if c not in built]
    lit = instance.cost_model.lit_fibers(
        instance.network, result.final.capacities
    )
    new_fibers = [
        fiber_id for fiber_id in lit
        if not instance.network.get_fiber(fiber_id).in_service
    ]
    print(f"candidates built   : {built or 'none'}")
    print(f"candidates skipped : {skipped or 'none'}")
    print(f"new fibers to light: {new_fibers or 'none'}")
    build_cost = sum(
        instance.network.get_fiber(f).cost for f in new_fibers
    )
    print(f"fiber build budget : {build_cost:,.0f}")

    evaluator = PlanEvaluator(instance, mode="sa")
    print(
        "plan survives all failures:",
        evaluator.evaluate(result.final.capacities).feasible,
    )

    # The deployable artifact: fiber builds first (long lead times),
    # then capacity turn-ups sorted by spend.
    from repro.planning import build_work_order, render_work_order

    order = build_work_order(instance, result.final)
    print()
    print(render_work_order(order, top=8))


if __name__ == "__main__":
    main()
