#!/usr/bin/env python3
"""Short-term planning on the public Abilene backbone.

Short-term planning keeps the IP topology fixed and decides how much
capacity to add to existing links so all traffic survives every single
fiber cut.  This example compares four planners on Abilene with a
gravity-model traffic matrix.

Run:  python examples/short_term_planning.py
"""

from repro import NeuroPlan
from repro.evaluator import PlanEvaluator
from repro.planning import GreedyPlanner, ILPHeurPlanner, ILPPlanner
from repro.topology import datasets


def main() -> None:
    instance = datasets.abilene(total_demand=2000.0, seed=0)
    print(instance.describe())
    print()

    evaluator = PlanEvaluator(instance, mode="sa")
    results = []

    greedy = GreedyPlanner().plan(instance)
    results.append(("greedy", greedy))

    heur = ILPHeurPlanner().plan(instance).plan
    results.append(("ILP-heur", heur))

    neuro = NeuroPlan(
        epochs=8,
        steps_per_epoch=256,
        max_trajectory_length=96,
        max_units_per_step=2,
        relax_factor=1.5,
        ilp_time_limit=60,
        seed=0,
    ).plan(instance)
    results.append(("NeuroPlan (1st)", neuro.first_stage))
    results.append(("NeuroPlan", neuro.final))

    ilp = ILPPlanner(time_limit=120).plan(instance)
    if ilp.plan is not None:
        results.append(("full ILP", ilp.plan))

    print(f"{'planner':<18}{'cost':>14}{'added Gbps':>14}{'feasible':>10}")
    for name, plan in results:
        feasible = evaluator.evaluate(plan.capacities).feasible
        print(
            f"{name:<18}{plan.cost(instance):>14,.0f}"
            f"{plan.total_added_gbps(instance):>14,.0f}"
            f"{str(feasible):>10}"
        )

    print()
    print("Busiest links in the NeuroPlan design:")
    top = sorted(
        neuro.final.capacities.items(), key=lambda item: -item[1]
    )[:5]
    for link_id, capacity in top:
        print(f"  {link_id:<40}{capacity:>10,.0f} Gbps")


if __name__ == "__main__":
    main()
