#!/usr/bin/env python3
"""Walk through the paper's Figure 1 example, short- and long-term.

The instance: a 100 Gbps flow from site A to site D that must survive
three single-fiber failures.  Cost is approximated as the number of
fibers used (each fiber has unit cost, capacity is a tiny tie-breaker).

Short-term (Fig. 1a): with only IP links 1 (A-B-C-D) and 2 (A-E-F-D),
both must be built at 100 Gbps -- 6 fibers.

Long-term (Fig. 1b): building candidate fiber B-F enables IP link 3
(A-B-F-D).  Plan (1, 3) shares fiber A-B between the two links, so it
only lights 5 fibers and beats plan (1, 2).

Run:  python examples/figure1_walkthrough.py
"""

from repro.evaluator import PlanEvaluator
from repro.planning import ILPPlanner
from repro.topology import datasets


def check(instance, capacities) -> str:
    evaluator = PlanEvaluator(instance, mode="sa")
    result = evaluator.evaluate(capacities)
    verdict = (
        "feasible"
        if result.feasible
        else f"INFEASIBLE ({result.violated_failure})"
    )
    fibers = len(instance.cost_model.lit_fibers(instance.network, capacities))
    return f"{verdict}, {fibers} fibers lit, cost {result.cost:.2f}"


def main() -> None:
    print("=== Short-term planning (Fig. 1a) ===")
    short = datasets.figure1_topology(long_term=False)
    print(short.describe())
    print("link1 only      :", check(short, {"link1": 100.0, "link2": 0.0}))
    print("links 1 + 2     :", check(short, {"link1": 100.0, "link2": 100.0}))
    outcome = ILPPlanner().plan(short)
    print("ILP optimum     :", outcome.plan.capacities)

    print()
    print("=== Long-term planning (Fig. 1b) ===")
    long = datasets.figure1_topology(long_term=True)
    print(long.describe())
    plans = {
        "plan (1,2)": {"link1": 100.0, "link2": 100.0, "link3": 0.0, "link4": 0.0},
        "plan (1,3)": {"link1": 100.0, "link2": 0.0, "link3": 100.0, "link4": 0.0},
        "plan (2,4)": {"link1": 0.0, "link2": 100.0, "link3": 0.0, "link4": 100.0},
    }
    for name, capacities in plans.items():
        print(f"{name:<16}:", check(long, capacities))
    outcome = ILPPlanner().plan(long)
    print("ILP optimum     :", outcome.plan.capacities,
          f"(cost {outcome.plan.cost(long):.2f})")
    print()
    print("The ILP picks plan (1,3): links 1 and 3 share fiber A-B, so the")
    print("plan lights 5 fibers instead of 6 -- the paper's exact narrative.")
    print()
    print("(Note: the paper lists plan (2,4) as surviving all three failures,")
    print("but links 2 and 4 both traverse fiber A-E, so an A-E cut kills")
    print("both; the evaluator correctly rejects it. The headline comparison")
    print("-- (1,3) beats (1,2) by sharing fiber A-B -- reproduces exactly.)")


if __name__ == "__main__":
    main()
